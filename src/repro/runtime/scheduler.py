"""Cooperative, seed-deterministic task scheduler.

Every simulated thread (an MPI process main thread or an OpenMP team
member) is a Python generator that yields scheduling points:

* :class:`Step` — "I did work costing *cost* virtual time units".
* :class:`Block` — "park me until *is_ready()* returns True".

The scheduler repeatedly picks one runnable task — uniformly at random
from a seeded RNG (policy ``random``) or round-robin (policy ``rr``) —
and advances it by one yield.  Runnability of blocked tasks is
re-evaluated every iteration, so a task whose wake condition was
consumed by a competitor (e.g. two receives racing for one message)
simply stays blocked.

Deadlock detection: when no task is runnable and at least one is
blocked, the scheduler raises :class:`DeadlockError` carrying the
blocked tasks' reasons — this is the graph-less analogue of the cycle
detection the paper mentions, and is what the Fig. 1 / Fig. 2 case
studies exercise.
"""

from __future__ import annotations

import random
import time as _time
from dataclasses import dataclass
from typing import Callable, Generator, Iterable, List, Optional, Union

from ..errors import (
    DeadlockError,
    SchedulerError,
    StepLimitError,
    WallClockLimitError,
)

#: Default hard cap on scheduler iterations (runaway-program guard).
#: Shared with :class:`~repro.runtime.config.RunConfig` so the two stay
#: in sync.
DEFAULT_MAX_STEPS = 50_000_000

#: Re-check the host wall clock only every this many steps: a syscall
#: per simulated step would dominate the profile.
_WALL_CHECK_INTERVAL = 4096


@dataclass(frozen=True)
class Step:
    """Yielded by a task after doing *cost* units of work."""

    cost: float = 0.0


@dataclass(frozen=True)
class Block:
    """Yielded by a task that must wait for *is_ready* to become true."""

    reason: str
    is_ready: Callable[[], bool]


SchedYield = Union[Step, Block]
TaskGen = Generator[SchedYield, None, None]

_READY = "ready"
_BLOCKED = "blocked"
_DONE = "done"


class Task:
    """One schedulable thread of control."""

    __slots__ = ("name", "proc", "thread", "gen", "state", "clock", "block", "steps")

    def __init__(self, name: str, proc: int, thread: int, gen: TaskGen) -> None:
        self.name = name
        self.proc = proc
        self.thread = thread
        self.gen = gen
        self.state = _READY
        self.clock = 0.0
        self.block: Optional[Block] = None
        self.steps = 0

    @property
    def done(self) -> bool:
        return self.state == _DONE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.name} p{self.proc}t{self.thread} {self.state} t={self.clock:.1f}>"


@dataclass
class BlockedInfo:
    """Diagnostic snapshot of one blocked task at deadlock time."""

    name: str
    proc: int
    thread: int
    reason: str

    def __str__(self) -> str:
        return f"[rank {self.proc} thread {self.thread}] blocked: {self.reason}"


def _blocked_by_rank(infos: List["BlockedInfo"]) -> str:
    """Summarize every blocked rank with its pending operations, so a
    deadlock report names the full wait set (timeout-vs-deadlock triage
    needs more than a count)."""
    by_rank: dict = {}
    for info in infos:
        by_rank.setdefault(info.proc, []).append(f"t{info.thread}: {info.reason}")
    return "; ".join(
        f"rank {proc} [{', '.join(reasons)}]" for proc, reasons in sorted(by_rank.items())
    )


class Scheduler:
    """Runs a set of cooperative tasks to completion (or deadlock)."""

    def __init__(
        self,
        seed: int = 0,
        policy: str = "random",
        max_steps: int = DEFAULT_MAX_STEPS,
        max_wall_seconds: float = 0.0,
    ) -> None:
        if policy not in ("random", "rr"):
            raise SchedulerError(f"unknown scheduling policy {policy!r}")
        self.rng = random.Random(seed)
        self.policy = policy
        self.max_steps = max_steps
        #: host wall-clock budget for the whole run; 0 = unlimited
        self.max_wall_seconds = max_wall_seconds
        self._deadline: Optional[float] = None
        self.tasks: List[Task] = []
        #: not-yet-done tasks in spawn order (lazily pruned) — scanning
        #: finished tasks every step dominated the profile otherwise
        self._live: List[Task] = []
        self.total_steps = 0
        self._rr_cursor = -1
        #: called when no task is runnable but some are blocked; returns
        #: True if it unblocked something (e.g. timed out a waiter), in
        #: which case runnability is re-evaluated instead of raising
        #: DeadlockError
        self.stall_handler: Optional[Callable[[], bool]] = None

    # -- task management -----------------------------------------------------

    def spawn(
        self,
        name: str,
        proc: int,
        thread: int,
        gen: TaskGen,
        start_clock: float = 0.0,
    ) -> Task:
        """Register a new task. May be called while :meth:`run` is active
        (OpenMP team forks spawn workers mid-run)."""
        task = Task(name, proc, thread, gen)
        task.clock = start_clock
        self.tasks.append(task)
        self._live.append(task)
        return task

    def live_tasks(self) -> List[Task]:
        return [t for t in self.tasks if not t.done]

    # -- execution ------------------------------------------------------------

    def _runnable(self) -> List[Task]:
        out = []
        live = self._live
        needs_prune = False
        for task in live:
            state = task.state
            if state == _READY:
                out.append(task)
            elif state == _BLOCKED:
                if task.block.is_ready():
                    out.append(task)
            else:  # _DONE: prune lazily, preserving spawn order
                needs_prune = True
        if needs_prune:
            self._live = [t for t in live if t.state != _DONE]
        return out

    def _pick(self, runnable: List[Task]) -> Task:
        if self.policy == "random":
            return runnable[self.rng.randrange(len(runnable))]
        # Round-robin over task creation order.
        for _ in range(len(self.tasks)):
            self._rr_cursor = (self._rr_cursor + 1) % len(self.tasks)
            candidate = self.tasks[self._rr_cursor]
            if candidate in runnable:
                return candidate
        return runnable[0]

    def step_one(self) -> bool:
        """Advance one task by one yield.

        Returns False when all tasks are done.  Raises DeadlockError if
        live tasks exist but none can run.
        """
        runnable = self._runnable()
        if not runnable:
            blocked = [t for t in self._live if t.state == _BLOCKED]
            if not blocked:
                return False  # everything finished
            while not runnable and self.stall_handler and self.stall_handler():
                runnable = self._runnable()
            if not runnable:
                infos = [
                    BlockedInfo(t.name, t.proc, t.thread, t.block.reason if t.block else "?")
                    for t in blocked
                ]
                raise DeadlockError(
                    f"deadlock: {len(blocked)} task(s) blocked with no "
                    f"runnable task; {_blocked_by_rank(infos)}",
                    blocked=infos,
                )
        task = self._pick(runnable)
        task.state = _READY
        task.block = None
        try:
            yielded = next(task.gen)
        except StopIteration:
            task.state = _DONE
            return True
        task.steps += 1
        self.total_steps += 1
        if self.total_steps > self.max_steps:
            raise StepLimitError(
                f"scheduler exceeded {self.max_steps} steps; "
                "simulated program is probably in an infinite loop "
                f"({self._busiest_tasks()})",
                task_steps={t.name: t.steps for t in self.tasks},
            )
        if (
            self._deadline is not None
            and self.total_steps % _WALL_CHECK_INTERVAL == 0
            and _time.monotonic() > self._deadline
        ):
            raise WallClockLimitError(
                f"scheduler exceeded its {self.max_wall_seconds:.1f}s "
                f"wall-clock budget after {self.total_steps} steps"
            )
        if isinstance(yielded, Step):
            task.clock += yielded.cost
        elif isinstance(yielded, Block):
            task.state = _BLOCKED
            task.block = yielded
        else:
            raise SchedulerError(f"task {task.name} yielded {yielded!r}")
        return True

    def _busiest_tasks(self, top: int = 4) -> str:
        """Per-task step counts of the hungriest tasks, for diagnostics."""
        ranked = sorted(self.tasks, key=lambda t: t.steps, reverse=True)[:top]
        return "busiest tasks: " + ", ".join(
            f"{t.name}: {t.steps} steps" for t in ranked
        )

    def run(self) -> None:
        """Run all tasks to completion; raises DeadlockError on deadlock."""
        if self.max_wall_seconds > 0:
            self._deadline = _time.monotonic() + self.max_wall_seconds
        if self.policy != "random":
            while self.step_one():
                pass
            return
        self._run_random()

    def _run_random(self) -> None:
        """Inlined hot loop for the default random policy.

        Byte-identical to ``while step_one(): pass``: one RNG draw per
        step over the same runnable list (spawn order, blocked tasks
        re-evaluated in place), StopIteration not counted as a step, the
        same limit/deadlock error messages.  The win is structural: a
        blocked-task counter lets the common all-ready iteration pick
        straight from the live list without rebuilding it, and done
        tasks are pruned immediately instead of rescanned.
        """
        live = self._live = [t for t in self._live if t.state != _DONE]
        nblocked = sum(1 for t in live if t.state == _BLOCKED)
        rng_draw = self.rng.randrange
        # Inline random.Random's _randbelow_with_getrandbits: the same
        # getrandbits consumption as randrange(n) (so seed-for-seed
        # schedules stay identical to step_one and the ast engine)
        # without the randrange/_randbelow call frames on every step.
        # A subclassed RNG keeps the portable randrange call.
        getrandbits = (
            self.rng.getrandbits if type(self.rng) is random.Random else None
        )
        max_steps = self.max_steps
        deadline = self._deadline
        total = self.total_steps
        try:
            while True:
                if not nblocked:
                    if not live:
                        return
                    runnable = live
                else:
                    runnable = [
                        t for t in live
                        if t.state == _READY or t.block.is_ready()
                    ]
                    if not runnable:
                        blocked = [t for t in live if t.state == _BLOCKED]
                        while (not runnable and self.stall_handler
                               and self.stall_handler()):
                            runnable = self._runnable()
                        if not runnable:
                            infos = [
                                BlockedInfo(
                                    t.name, t.proc, t.thread,
                                    t.block.reason if t.block else "?",
                                )
                                for t in blocked
                            ]
                            raise DeadlockError(
                                f"deadlock: {len(blocked)} task(s) blocked "
                                f"with no runnable task; "
                                f"{_blocked_by_rank(infos)}",
                                blocked=infos,
                            )
                        # the stall handler may have pruned/rebound _live
                        live = self._live
                        nblocked = sum(
                            1 for t in live if t.state == _BLOCKED
                        )
                n = len(runnable)
                if getrandbits is not None:
                    k = n.bit_length()
                    r = getrandbits(k)
                    while r >= n:
                        r = getrandbits(k)
                    task = runnable[r]
                else:
                    task = runnable[rng_draw(n)]
                if task.state == _BLOCKED:
                    nblocked -= 1
                    task.state = _READY
                    task.block = None
                try:
                    yielded = next(task.gen)
                except StopIteration:
                    task.state = _DONE
                    live.remove(task)
                    continue
                task.steps += 1
                total += 1
                if total > max_steps:
                    raise StepLimitError(
                        f"scheduler exceeded {self.max_steps} steps; "
                        "simulated program is probably in an infinite loop "
                        f"({self._busiest_tasks()})",
                        task_steps={t.name: t.steps for t in self.tasks},
                    )
                if (
                    deadline is not None
                    and not total % _WALL_CHECK_INTERVAL
                    and _time.monotonic() > deadline
                ):
                    raise WallClockLimitError(
                        f"scheduler exceeded its {self.max_wall_seconds:.1f}s "
                        f"wall-clock budget after {total} steps"
                    )
                cls = type(yielded)
                if cls is Step:
                    task.clock += yielded.cost
                elif cls is Block:
                    task.state = _BLOCKED
                    task.block = yielded
                    nblocked += 1
                elif isinstance(yielded, Step):
                    task.clock += yielded.cost
                elif isinstance(yielded, Block):
                    task.state = _BLOCKED
                    task.block = yielded
                    nblocked += 1
                else:
                    raise SchedulerError(
                        f"task {task.name} yielded {yielded!r}"
                    )
        finally:
            # keep the public counter accurate however the loop exits
            # (done, limit raise, a fault propagating out of a task)
            self.total_steps = total

    # -- results ------------------------------------------------------------

    def makespan(self) -> float:
        """Maximum virtual clock over all tasks (the run's execution time)."""
        return max((t.clock for t in self.tasks), default=0.0)

    def clocks_by_process(self) -> dict:
        out: dict = {}
        for t in self.tasks:
            out[t.proc] = max(out.get(t.proc, 0.0), t.clock)
        return out
