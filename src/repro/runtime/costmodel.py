"""Virtual-time cost model.

The paper's evaluation (Figs. 4-7) reports wall-clock execution time on
EC2 for the base application and for each checking tool.  We replace
wall-clock with deterministic *virtual time*: every simulated action
charges its executing thread's clock, message completion respects
sender-side timestamps plus network latency, and a run's execution time
is the maximum clock over all threads of all processes (makespan).

Tool overheads are charged through :class:`InstrumentationCharge`:

* HOME pays ``wrapper_cost`` per *instrumented* MPI call plus a small
  per-monitored-event logging cost — its static filtering means only
  MPI calls inside ``omp parallel`` regions are instrumented.
* Marmot pays a manager round-trip per MPI call (every call, no static
  filtering) — the "additional MPI process performs a global analysis"
  of the paper — and the manager serializes calls across the whole job,
  which is why its overhead grows faster with process count.
* ITC pays ``mem_event_cost`` on every shared memory access in parallel
  regions (binary instrumentation of all thread-level instructions).

All constants are in abstract microsecond-like units; only ratios
matter for reproducing the paper's overhead bands.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CostModel:
    """Base costs of simulated actions (no tool overhead)."""

    #: Cost of dispatching one statement.
    stmt: float = 1.0
    #: Cost of one unit of ``compute(n)`` synthetic work.
    compute_unit: float = 10.0
    #: Fixed software overhead of any MPI call.
    mpi_call: float = 20.0
    #: Network latency added between matching send and recv completion.
    msg_latency: float = 60.0
    #: Per-element payload transfer cost.
    msg_per_elem: float = 0.5
    #: Cost of passing a team barrier / collective synchronization.
    barrier: float = 30.0
    #: Cost of acquiring or releasing a lock / entering a critical.
    lock: float = 4.0
    #: Cost of forking or joining an OpenMP team, per member.
    fork_per_thread: float = 25.0
    #: Base wait before the first retry of a timed-out MPI operation
    #: (doubled per attempt by the fault-tolerance layer's backoff).
    retry_backoff: float = 120.0

    def scaled(self, factor: float) -> "CostModel":
        """Uniformly scale all base costs (used in calibration tests)."""
        return replace(
            self,
            stmt=self.stmt * factor,
            compute_unit=self.compute_unit * factor,
            mpi_call=self.mpi_call * factor,
            msg_latency=self.msg_latency * factor,
            msg_per_elem=self.msg_per_elem * factor,
            barrier=self.barrier * factor,
            lock=self.lock * factor,
            fork_per_thread=self.fork_per_thread * factor,
            retry_backoff=self.retry_backoff * factor,
        )


@dataclass(frozen=True)
class InstrumentationCharge:
    """Extra virtual-time costs a checking tool imposes on the run."""

    #: Charged at each instrumented MPI call (HMPI wrapper body).
    wrapper_cost: float = 0.0
    #: Charged per monitored-variable write event recorded.
    monitored_event_cost: float = 0.0
    #: Charged per shared memory access when full memory monitoring is on.
    mem_event_cost: float = 0.0
    #: Charged per MPI call as a round trip to a central manager process.
    manager_rtt: float = 0.0
    #: Manager service time per reported call.  When
    #: ``manager_serializes``, the manager is a single shared server fed
    #: by every process, so the expected queueing delay a caller sees is
    #: ``manager_service * nprocs`` — the linear-in-job-size growth that
    #: makes Marmot-style central checking scale poorly.
    manager_service: float = 0.0
    #: When true, manager round-trips serialize globally (Marmot's extra
    #: analysis process is a shared resource): each RTT also waits for
    #: the manager to become free.
    manager_serializes: bool = False
    #: Charged once per thread at team fork (per-thread analysis state).
    per_thread_setup: float = 0.0

    @property
    def monitors_memory(self) -> bool:
        return self.mem_event_cost > 0.0


#: Tool presets calibrated so the reproduced overhead bands match the
#: paper: HOME 16-45%, Marmot 15-56%, ITC up to ~200%.
NO_INSTRUMENTATION = InstrumentationCharge()

HOME_CHARGE = InstrumentationCharge(
    wrapper_cost=13.0,
    monitored_event_cost=3.2,
    per_thread_setup=205.0,
)

MARMOT_CHARGE = InstrumentationCharge(
    wrapper_cost=4.0,
    manager_rtt=164.0,
    manager_service=0.8,
    manager_serializes=True,
)

ITC_CHARGE = InstrumentationCharge(
    wrapper_cost=10.0,
    mem_event_cost=6.5,
    per_thread_setup=880.0,
)

DEFAULT_COST_MODEL = CostModel()


@dataclass
class CostAccumulator:
    """Per-run tallies of where virtual time went (diagnostics)."""

    base: float = 0.0
    instrumentation: float = 0.0
    communication: float = 0.0
    counts: dict = field(default_factory=dict)

    def charge(self, bucket: str, amount: float) -> None:
        if bucket == "base":
            self.base += amount
        elif bucket == "instrumentation":
            self.instrumentation += amount
        elif bucket == "communication":
            self.communication += amount
        self.counts[bucket] = self.counts.get(bucket, 0) + 1
