"""Run configuration and execution results."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..events import EventLog
from ..faults.plan import FaultPlan
from ..mpi.deadlock import DeadlockDiagnosis
from .costmodel import (
    DEFAULT_COST_MODEL,
    NO_INSTRUMENTATION,
    CostModel,
    InstrumentationCharge,
)
from .scheduler import DEFAULT_MAX_STEPS

#: How the runtime treats MPI calls that breach the granted thread level.
#:
#: * ``skip``       — the call is silently not executed (the paper's Fig. 1
#:   observation: "only MPI_Send or MPI_Recv is executed, but not both").
#: * ``permissive`` — the call executes anyway; the breach is recorded.
#: * ``strict``     — the run aborts (a strict MPI implementation).
THREAD_LEVEL_MODES = ("skip", "permissive", "strict")

#: Available execution engines.
#:
#: * ``bytecode`` — compile-once closure-array VM (the default): programs
#:   are lowered to flat instruction lists, shared across campaign cells
#:   and serve workers; traces are byte-identical to the tree-walk.
#: * ``ast``      — the original recursive generator tree-walk, kept as a
#:   reference implementation and differential-testing oracle.
ENGINES = ("ast", "bytecode")


def _default_engine() -> str:
    """Engine default, overridable by the REPRO_ENGINE environment
    variable (how the ``--engine`` CLI flag reaches campaign worker
    processes and the CI engine matrix)."""
    return os.environ.get("REPRO_ENGINE", "bytecode")


@dataclass
class RunConfig:
    """Everything that parameterizes one simulated execution."""

    nprocs: int = 2
    #: default OpenMP team size (paper experiments use 2 threads/process)
    num_threads: int = 2
    seed: int = 0
    schedule_policy: str = "random"
    cost_model: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)
    charge: InstrumentationCharge = field(default_factory=lambda: NO_INSTRUMENTATION)
    #: make blocking sends rendezvous (sender waits for the matching recv)
    sync_sends: bool = False
    #: payload element count above which a buffered send turns rendezvous
    eager_threshold: int = 1 << 16
    thread_level_mode: str = "skip"
    #: highest thread level the simulated MPI library grants
    max_thread_level: int = 3
    #: re-raise DeadlockError instead of recording it in the result
    raise_on_deadlock: bool = False
    #: record MemAccess events for shared variables in parallel regions
    monitor_memory: bool = False
    #: restrict memory monitoring to these variable names (None = all
    #: shared variables, the monitor-everything ITC behaviour; HOME
    #: narrows this to the static race pass's candidate variables)
    monitored_vars: Optional[frozenset] = None
    #: record CollectiveArrive events at OMP/MPI collective encounters
    #: (the PARCOACH-style dynamic collective-matching confirm pass)
    monitor_collectives: bool = False
    #: restrict collective monitoring to these "line:col" site locs
    #: (None = every collective site; HOME narrows this to the static
    #: divergence pass's candidate sites).  Loc-keyed, not nid-keyed:
    #: instrumentation clones the AST and reassigns nids, but source
    #: locations survive the clone.
    collective_sites: Optional[frozenset] = None
    #: hard cap on scheduler iterations (runaway-program guard)
    max_steps: int = DEFAULT_MAX_STEPS
    #: host wall-clock budget for one run; 0 = unlimited
    max_wall_seconds: float = 0.0
    #: user function call depth cap (each simulated frame nests several
    #: Python generator frames, so this stays well under the host limit)
    max_call_depth: int = 60
    #: injected faults this run executes under (None = healthy library)
    fault_plan: Optional[FaultPlan] = None
    #: on step/wall budget exhaustion, return the partial
    #: :class:`ExecutionResult` (with ``failure`` set) instead of
    #: raising — the campaign runner's partial-trace recovery
    capture_partial: bool = False
    #: execution engine: "bytecode" (compiled closure arrays) or "ast"
    #: (tree-walk reference); both produce byte-identical traces
    engine: str = field(default_factory=_default_engine)

    def __post_init__(self) -> None:
        if self.thread_level_mode not in THREAD_LEVEL_MODES:
            raise ValueError(f"bad thread_level_mode {self.thread_level_mode!r}")
        if self.engine not in ENGINES:
            raise ValueError(
                f"bad engine {self.engine!r} (expected one of {ENGINES})"
            )
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if self.num_threads < 1:
            raise ValueError("num_threads must be >= 1")


@dataclass
class ExecutionResult:
    """Outcome of one simulated execution."""

    program_name: str
    config: RunConfig
    makespan: float = 0.0
    proc_clocks: Dict[int, float] = field(default_factory=dict)
    log: EventLog = field(default_factory=EventLog)
    outputs: List[tuple] = field(default_factory=list)  # (proc, thread, text)
    deadlock: Optional[DeadlockDiagnosis] = None
    #: runtime-observed irregularities (thread-level breaches, double waits...)
    notes: List[str] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)
    #: non-None when the run ended early (step/wall budget); the log
    #: then holds the salvageable partial trace
    failure: Optional[str] = None

    @property
    def deadlocked(self) -> bool:
        return self.deadlock is not None

    @property
    def completed(self) -> bool:
        """True when the run ran to completion (deadlock counts: the
        schedule terminated and the trace is whole)."""
        return self.failure is None

    def printed_lines(self) -> List[str]:
        return [text for (_p, _t, text) in self.outputs]

    def summary(self) -> str:
        lines = [
            f"program={self.program_name} procs={self.config.nprocs} "
            f"threads={self.config.num_threads} seed={self.config.seed}",
            f"makespan={self.makespan:.1f} events={len(self.log)} "
            f"deadlocked={self.deadlocked}",
        ]
        if self.failure:
            lines.append(f"INCOMPLETE: {self.failure}")
        if self.notes:
            lines.append(f"notes: {len(self.notes)}")
        return "\n".join(lines)
