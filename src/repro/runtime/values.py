"""Simulated memory: cells, arrays and lexical scopes.

Variables live in :class:`Cell` objects so OpenMP data-sharing semantics
work naturally: a *shared* variable is one whose cell is visible to more
than one thread; ``private``/``firstprivate`` clauses give each team
member a fresh cell.  Cells carry a unique id used by the ITC model's
full memory-access monitoring and by race reports.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

from ..errors import SimAbort

_CELL_COUNTER = itertools.count(1)


class Cell:
    """One storage location holding a scalar or an array value."""

    __slots__ = ("cid", "name", "value", "shared")

    def __init__(self, name: str, value: Any = 0) -> None:
        self.cid: int = next(_CELL_COUNTER)
        self.name = name
        self.value = value
        #: Marked True when the cell becomes visible to an OpenMP team.
        self.shared = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cell {self.name}#{self.cid}={self.value!r} shared={self.shared}>"


class ArrayValue:
    """A fixed-size 1-D numeric array with reference semantics.

    Message payloads in the MPI simulator are snapshots of these arrays;
    receives copy back into the destination array, mirroring real MPI
    buffer semantics.
    """

    __slots__ = ("data",)

    def __init__(self, size: int) -> None:
        if size < 0:
            raise SimAbort(f"negative array size {size}")
        self.data = np.zeros(int(size), dtype=np.float64)

    def __len__(self) -> int:
        return len(self.data)

    def get(self, index: int) -> float:
        self._check(index)
        return float(self.data[index])

    def set(self, index: int, value: float) -> None:
        self._check(index)
        self.data[index] = value

    def snapshot(self) -> np.ndarray:
        return self.data.copy()

    def load(self, payload: np.ndarray, count: Optional[int] = None) -> None:
        n = len(payload) if count is None else min(count, len(payload))
        n = min(n, len(self.data))
        self.data[:n] = payload[:n]

    def _check(self, index: int) -> None:
        if not isinstance(index, (int, np.integer)):
            raise SimAbort(f"array index must be an integer, got {index!r}")
        if not 0 <= index < len(self.data):
            raise SimAbort(
                f"array index {index} out of bounds for array of size {len(self.data)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayValue(len={len(self.data)})"


class Scope:
    """A lexical scope: name -> Cell, chained to a parent scope."""

    __slots__ = ("parent", "cells")

    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self.parent = parent
        self.cells: Dict[str, Cell] = {}

    def declare(self, name: str, value: Any = 0) -> Cell:
        """Declare a variable in *this* scope (shadowing any outer binding)."""
        cell = Cell(name, value)
        self.cells[name] = cell
        return cell

    def bind(self, name: str, cell: Cell) -> None:
        """Bind an existing cell under *name* (used for shared captures)."""
        self.cells[name] = cell

    def lookup(self, name: str) -> Cell:
        scope: Optional[Scope] = self
        while scope is not None:
            cell = scope.cells.get(name)
            if cell is not None:
                return cell
            scope = scope.parent
        raise SimAbort(f"undefined variable {name!r}")

    def try_lookup(self, name: str) -> Optional[Cell]:
        try:
            return self.lookup(name)
        except SimAbort:
            return None

    def visible_cells(self) -> Iterator[Cell]:
        """All cells visible from this scope (inner shadowing outer)."""
        seen: set = set()
        scope: Optional[Scope] = self
        while scope is not None:
            for name, cell in scope.cells.items():
                if name not in seen:
                    seen.add(name)
                    yield cell
            scope = scope.parent


def truthy(value: Any) -> bool:
    """Mini-language truthiness: numbers nonzero, bools as-is."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float, np.integer, np.floating)):
        return value != 0
    if isinstance(value, str):
        return bool(value)
    if isinstance(value, ArrayValue):
        return True
    raise SimAbort(f"cannot use {type(value).__name__} value in a condition")


def as_int(value: Any, what: str = "value") -> int:
    """Coerce a mini-language value to a Python int (for tags, ranks...)."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)) and float(value).is_integer():
        return int(value)
    raise SimAbort(f"{what} must be an integer, got {value!r}")


class BinOps:
    """Binary operator semantics shared by the interpreter and constant folding."""

    @staticmethod
    def apply(op: str, a: Any, b: Any) -> Any:
        try:
            return BinOps._apply(op, a, b)
        except TypeError:
            raise SimAbort(
                f"operator {op!r} not supported between "
                f"{type(a).__name__} and {type(b).__name__}"
            ) from None

    @staticmethod
    def _apply(op: str, a: Any, b: Any) -> Any:
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if b == 0:
                raise SimAbort("division by zero")
            if isinstance(a, int) and isinstance(b, int):
                # C-like integer division truncating toward zero.
                q = abs(a) // abs(b)
                return q if (a >= 0) == (b >= 0) else -q
            return a / b
        if op == "%":
            if b == 0:
                raise SimAbort("modulo by zero")
            if isinstance(a, int) and isinstance(b, int):
                r = abs(a) % abs(b)
                return r if a >= 0 else -r
            raise SimAbort("'%' requires integer operands")
        if op == "==":
            return a == b
        if op == "!=":
            return a != b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
        if op == "&&":
            return truthy(a) and truthy(b)
        if op == "||":
            return truthy(a) or truthy(b)
        raise SimAbort(f"unknown binary operator {op!r}")

    @staticmethod
    def apply_unary(op: str, a: Any) -> Any:
        if op == "-":
            return -a
        if op == "!":
            return not truthy(a)
        raise SimAbort(f"unknown unary operator {op!r}")
