"""Exception hierarchy shared across the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch simulator-level failures without masking genuine Python bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class MiniLangError(ReproError):
    """Base class for mini-language front-end errors."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.line = line
        self.col = col
        #: undecorated message, for callers that format their own
        #: location prefix (e.g. the CLI's file:line:col diagnostics)
        self.bare = message
        if line:
            message = f"{message} (line {line}, col {col})"
        super().__init__(message)


class LexError(MiniLangError):
    """Raised when the lexer encounters an invalid character or literal."""


class ParseError(MiniLangError):
    """Raised when the parser encounters an unexpected token."""


class ValidationError(MiniLangError):
    """Raised when a structurally invalid AST is validated."""


class RuntimeSimError(ReproError):
    """Base class for simulated-runtime errors."""


class SimAbort(RuntimeSimError):
    """A simulated program aborted (e.g. failing assertion, MPI misuse)."""


class DeadlockError(RuntimeSimError):
    """The scheduler found every live task blocked with no wake-up possible."""

    def __init__(self, message: str, blocked: list | None = None) -> None:
        super().__init__(message)
        #: Diagnostic descriptions of the blocked tasks at deadlock time.
        self.blocked = blocked or []


class MPIUsageError(RuntimeSimError):
    """An MPI routine was called in a way the (simulated) standard forbids."""


class SchedulerError(RuntimeSimError):
    """Internal scheduler invariant broke (a bug in the simulator itself)."""


class StepLimitError(SchedulerError):
    """The scheduler hit its step budget (runaway-program guard).

    Carries per-task step counts so the report can say *which* simulated
    threads consumed the budget, not just that it ran out.
    """

    def __init__(self, message: str, task_steps: dict | None = None) -> None:
        super().__init__(message)
        #: task name -> steps executed when the budget ran out
        self.task_steps = dict(task_steps or {})


class WallClockLimitError(SchedulerError):
    """The scheduler exceeded its host wall-clock budget."""


class RankCrashFault(SimAbort):
    """An injected fault crashed a simulated MPI rank (MPI_Abort model).

    Subclasses :class:`SimAbort` so the interpreter's per-thread abort
    handling applies: the crashing thread unwinds, the rest of the job
    keeps running (and typically deadlocks waiting on the dead rank,
    exactly like a real MPI job losing a rank)."""


class WorkerKillFault(RuntimeSimError):
    """The worker-kill drill fired outside a disposable worker process.

    Inside a supervised campaign worker the drill SIGKILLs the whole
    process (that is its purpose: a deterministic poison cell for
    self-testing the service).  Anywhere else — a serial in-process
    campaign, a plain ``repro check`` — dying would take the
    coordinator with it, so the drill degrades to this exception and
    the cell records an error outcome instead.

    Deliberately *not* a :class:`SimAbort`: the interpreter absorbs
    aborts as a per-rank unwind and completes the run, but a worker
    kill models the whole process dying — it must escape the
    interpreter and fail the cell."""


class AnalysisError(ReproError):
    """Raised by the static/dynamic analysis layers on malformed input."""


class ToolError(ReproError):
    """Raised by tool drivers (HOME / baselines) on misconfiguration."""
