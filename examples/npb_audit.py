#!/usr/bin/env python
"""Audit the mini NPB-MZ suite with HOME.

Runs HOME over LU/BT/SP with the paper's six injected violations each,
prints the per-benchmark findings, the static-filter statistics, and
the detection scorecard against the injection registry.

Run:  python examples/npb_audit.py
"""

from repro.home import check_program
from repro.workloads.npb import BENCHMARKS, injection_registry, score_report


def main() -> None:
    for name, builder in BENCHMARKS.items():
        program = builder(inject=True)
        registry = injection_registry(program)
        report = check_program(program, nprocs=2, num_threads=2, seed=0)
        score = score_report(report.violations, registry)

        print("=" * 72)
        print(f"{name.upper()}-MZ with 6 injected violations")
        print(f"  static filter: {report.extras['instrumented_sites']} site(s) "
              f"instrumented, {report.extras['filtered_sites']} filtered out")
        print(f"  virtual execution time: {report.makespan:.0f}")
        print(f"  scorecard: detected {score['detected']}/6, "
              f"false positives {score['false_positives']}")
        for violation in report.violations:
            print(f"    {violation}")
        assert score["detected"] == 6, f"{name}: HOME must find all six"
        assert score["false_positives"] == 0

    print("=" * 72)
    print("audit OK: HOME detects all 18 injected violations with no false "
          "positives.")


if __name__ == "__main__":
    main()
