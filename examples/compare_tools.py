#!/usr/bin/env python
"""Head-to-head tool comparison on one benchmark (mini Table 1 + costs).

Runs HOME, the Marmot model and the Intel-Thread-Checker model on
LU-MZ with the six injected violations, reproducing the paper's
comparison story in one page of output:

* HOME finds all six (lockset+HB finds *potential* races);
* Marmot misses the compute-skewed receive pair (it only sees what
  actually overlapped in this run);
* ITC misses the probe-vs-probe pair (probes are not intercepted);
* the overhead ordering is HOME < Marmot < ITC.

Run:  python examples/compare_tools.py
"""

from repro.baselines import BaseRunner, IntelThreadChecker, Marmot
from repro.home import Home
from repro.workloads.npb import build_lu_mz, injection_registry, score_report


def main() -> None:
    program = build_lu_mz(inject=True)
    registry = injection_registry(program)
    base = BaseRunner().check(program, nprocs=4, num_threads=2, seed=0)
    print(f"Base (no checking): virtual time {base.makespan:.0f}")
    print()

    rows = []
    for tool in (Home(), Marmot(), IntelThreadChecker()):
        report = tool.check(program, nprocs=4, num_threads=2, seed=0)
        score = score_report(report.violations, registry)
        overhead = 100.0 * (report.makespan / base.makespan - 1.0)
        rows.append((tool.name, score, overhead))
        print(f"--- {tool.name} ---")
        print(f"  detected {score['detected']}/6 injected violation(s), "
              f"{score['false_positives']} false positive(s), "
              f"overhead {overhead:.0f}%")
        if score["missed"]:
            print(f"  missed: {', '.join(score['missed'])}")
        for fp in score["fp_findings"]:
            print(f"  false positive: {fp}")
        print()

    by_tool = {name: (score, ovh) for name, score, ovh in rows}
    assert by_tool["HOME"][0]["detected"] == 6
    assert "inject_concurrent_recv" in by_tool["MARMOT"][0]["missed"]
    assert "inject_probe" in by_tool["ITC"][0]["missed"]
    assert by_tool["HOME"][1] < by_tool["MARMOT"][1] < by_tool["ITC"][1]
    print("comparison OK: HOME finds more for less, as in the paper.")


if __name__ == "__main__":
    main()
