#!/usr/bin/env python
"""Case study: MPI calls in OpenMP sections without thread support
(the paper's Figure 1).

The program calls plain ``MPI_Init()`` — which grants only
MPI_THREAD_SINGLE — yet issues MPI_Send and MPI_Recv from two OpenMP
sections.  A real MPI library executes only the main thread's call
("only MPI_Send or MPI_Recv is executed, but not both"), silently
breaking the communication pairing; the simulator reproduces exactly
that, and HOME diagnoses the root cause both statically (before any
run) and dynamically.

Run:  python examples/case_study_sections.py
"""

from repro import check_program
from repro.analysis.static_ import run_static_analysis
from repro.workloads.case_studies import case_study_1


def main() -> None:
    program = case_study_1()

    print("### compile-time (static) phase ###")
    static = run_static_analysis(program)
    print(static.summary())

    print()
    print("### runtime phase ###")
    report = check_program(program, nprocs=2, num_threads=2)
    print(report.summary())

    if report.deadlocked:
        print()
        print("observed runtime consequence of the broken pairing:")
        print(report.execution.deadlock.summary())

    print()
    for note in report.execution.notes:
        print(f"runtime note: {note}")

    assert any(w.kind == "initialization" for w in static.warnings), (
        "the static phase must flag MPI-in-parallel under MPI_THREAD_SINGLE"
    )
    assert report.violations.count("InitializationViolation") > 0
    print()
    print("case study OK: initialization violation caught statically and "
          "dynamically.")


if __name__ == "__main__":
    main()
