#!/usr/bin/env python
"""Quickstart: check a hybrid MPI/OpenMP program with HOME.

This runs the paper's Figure-2 scenario — a two-rank ping-pong where
both OpenMP threads of each rank use the *same* message tag — detects
the Concurrent-Recv violation, then applies the standard fix (use the
thread id as the tag) and shows the report come back clean.

Run:  python examples/quickstart.py
"""

from repro import check_program, parse

BUGGY = """
program pingpong;

var a[1];

func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var tag = 0;
    omp parallel for for (var j = 0; j < 2; j = j + 1) {
        if (rank == 0) {
            mpi_send(a, 1, 1, tag, MPI_COMM_WORLD);
            mpi_recv(a, 1, 1, tag, MPI_COMM_WORLD);
        }
        if (rank == 1) {
            mpi_recv(a, 1, 0, tag, MPI_COMM_WORLD);
            mpi_send(a, 1, 0, tag, MPI_COMM_WORLD);
        }
    }
    mpi_finalize();
}
"""

FIXED = """
program pingpong_fixed;

var a[1];

func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        var tag = omp_get_thread_num();   // thread id as tag: the fix
        if (rank == 0) {
            mpi_send(a, 1, 1, tag, MPI_COMM_WORLD);
            mpi_recv(a, 1, 1, tag, MPI_COMM_WORLD);
        }
        if (rank == 1) {
            mpi_recv(a, 1, 0, tag, MPI_COMM_WORLD);
            mpi_send(a, 1, 0, tag, MPI_COMM_WORLD);
        }
    }
    mpi_finalize();
}
"""


def main() -> None:
    print("### buggy ping-pong (same tag on both threads) ###")
    report = check_program(parse(BUGGY), nprocs=2, num_threads=2)
    print(report.summary())
    assert report.violations.count("ConcurrentRecvViolation") > 0

    print()
    print("### fixed ping-pong (thread id as tag) ###")
    report = check_program(parse(FIXED), nprocs=2, num_threads=2)
    print(report.summary())
    assert len(report.violations) == 0

    print()
    print("quickstart OK: HOME flags the racy version and clears the fix.")


if __name__ == "__main__":
    main()
