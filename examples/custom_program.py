#!/usr/bin/env python
"""Write, run and check your own hybrid program — end-to-end tour.

Shows the full public API on a small user-written stencil code:

1. parse + validate mini-language source;
2. execute it on the simulator and read outputs/statistics;
3. inspect the compile-time analysis (CFG, sites, instrumented source);
4. check it with HOME and interpret the findings.

Run:  python examples/custom_program.py
"""

from repro import check_program, parse, print_program, run_program, validate
from repro.analysis.cfg import build_cfg
from repro.analysis.static_ import run_static_analysis

SOURCE = """
program stencil;

var grid[64];
var halo[2];

func relax(first, last) {
    for (var i = first; i < last; i = i + 1) {
        grid[i] = grid[i] + 1.0;
        compute(1);
    }
    return 0;
}

func main() {
    var provided = mpi_init_thread(MPI_THREAD_FUNNELED);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var size = mpi_comm_size(MPI_COMM_WORLD);
    var span = 64 / size;
    var first = rank * span;

    for (var step = 0; step < 3; step = step + 1) {
        omp parallel num_threads(2) {
            omp for for (var i = first; i < first + span; i = i + 1) {
                grid[i] = grid[i] + 0.5;
                compute(1);
            }
            omp master {
                if (size > 1) {
                    var right = (rank + 1) % size;
                    var left = (rank + size - 1) % size;
                    mpi_send(halo, 1, right, 40 + step, MPI_COMM_WORLD);
                    mpi_recv(halo, 1, left, 40 + step, MPI_COMM_WORLD);
                }
            }
        }
        var residual = mpi_allreduce(grid[first], MPI_SUM, MPI_COMM_WORLD);
        omp barrier;
    }
    print("rank", rank, "done at", mpi_wtime());
    mpi_finalize();
}
"""


def main() -> None:
    program = parse(SOURCE)
    validate(program)
    print(f"parsed program {program.name!r} "
          f"({len(program.functions)} functions)")

    cfg = build_cfg(program.main)
    print(f"main() CFG: {len(cfg.nodes)} nodes, "
          f"{len(cfg.mpi_nodes())} MPI call node(s)")

    print()
    print("### plain execution (2 ranks x 2 threads) ###")
    result = run_program(program, nprocs=2, num_threads=2, seed=0)
    for proc, thread, text in result.outputs:
        print(f"  [rank {proc}] {text}")
    print(f"  virtual time {result.makespan:.0f}, "
          f"{result.stats['mpi_calls']} MPI calls, "
          f"{result.stats['messages_sent']} messages")

    print()
    print("### compile-time analysis ###")
    static = run_static_analysis(program)
    print(static.summary())
    print()
    print("instrumented main() (excerpt):")
    text = print_program(static.instrumented_program)
    for line in text.splitlines():
        if "hmpi_" in line or "mpi_monitor_setup" in line:
            print(f"  {line.strip()}")

    print()
    print("### HOME check ###")
    report = check_program(program, nprocs=2, num_threads=2)
    print(report.summary())
    assert len(report.violations) == 0, (
        "funneled master-guarded communication is thread-safe"
    )
    print()
    print("custom program OK: thread-safe by construction, HOME agrees.")


if __name__ == "__main__":
    main()
