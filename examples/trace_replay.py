#!/usr/bin/env python
"""Offline trace replay: record once, analyze many ways.

HOME's dynamic phase is offline — it consumes a recorded event stream —
so a single instrumented run can be archived and re-analyzed with
different detector configurations.  This example:

1. runs the instrumented Figure-2 case study and saves its trace;
2. reloads the trace and reproduces HOME's verdict from the file alone;
3. re-analyzes the same trace with deliberately degraded detectors
   (the ablation knobs), showing how the lockset+happens-before
   combination controls false positives on a lock-serialized workload.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro.analysis.dynamic_.hybrid import DetectorConfig, analyze
from repro.analysis.static_ import instrument_program
from repro.events import dump_log, load_log
from repro.minilang import parse
from repro.runtime import Interpreter, RunConfig
from repro.violations import CONCURRENT_RECV, match_violations

#: One racy receive pair and one critical-serialized (safe) pair.
WORKLOAD = """
program mixed;
var buf[2];
func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var partner = 1 - rank;
    mpi_send(buf, 1, partner, 1, MPI_COMM_WORLD);
    mpi_send(buf, 1, partner, 1, MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        omp critical { mpi_recv(buf, 1, partner, 1, MPI_COMM_WORLD); }
    }
    mpi_send(buf, 1, partner, 2, MPI_COMM_WORLD);
    mpi_send(buf, 1, partner, 2, MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        mpi_recv(buf, 1, partner, 2, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
"""


def main() -> None:
    # 1. record
    instrumented = instrument_program(parse(WORKLOAD))
    config = RunConfig(nprocs=2, num_threads=2, thread_level_mode="permissive")
    result = Interpreter(instrumented.program, config).run()
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "mixed.trace"
        dump_log(result.log, trace_path, metadata={"program": "mixed"})
        size = trace_path.stat().st_size
        print(f"recorded {len(result.log)} events to {trace_path.name} "
              f"({size} bytes)")

        # 2. replay with the paper's detector
        log, meta = load_log(trace_path)
        verdict = match_violations(log, analyze(log))
        print()
        print("### replayed trace, hybrid lockset+HB detector (paper) ###")
        print(verdict.summary())
        recv_findings = [v for v in verdict if v.vclass == CONCURRENT_RECV]
        assert len(recv_findings) == 1, "exactly the real race"

        # 3. degraded detectors on the same file
        blind = DetectorConfig(
            ignored_locks=lambda name: name.startswith("critical:")
        )
        degraded = match_violations(log, analyze(log, blind))
        print()
        print("### same trace, criticals invisible (ITC-style blind spot) ###")
        print(degraded.summary())
        degraded_recv = [v for v in degraded if v.vclass == CONCURRENT_RECV]
        assert len(degraded_recv) == 2, "false positive on the guarded pair"

    print()
    print("trace replay OK: one archived run, two analyses, and the "
          "lock-aware detector is the one without the false positive.")


if __name__ == "__main__":
    main()
