"""Benchmark: detection survives a hostile campaign environment.

A 16-seed fault-injection campaign over the racy NPB-MZ LU benchmark
in which 25% of the runs are forced to fail outright (the tool's
run_config raises, as a crashing wrapper process would) and the rest
execute under injected faults.  The claim under test: the merged
campaign report still contains every Table-1 violation class that the
fault-free single run detects — per-run failures cost runs, not
findings.
"""

from repro.campaign import (
    STATUS_ERROR,
    CampaignConfig,
    default_plan_matrix,
    run_campaign,
)
from repro.home import Home
from repro.violations import ALL_VIOLATION_CLASSES
from repro.workloads import BENCHMARKS

#: one in four campaign cells dies before producing a trace
_FAILURE_STRIDE = 4


class FlakyTool(Home):
    """Home whose every ``_FAILURE_STRIDE``-th run dies before running."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def run_config(self, *args, **kwargs):
        self.calls += 1
        if self.calls % _FAILURE_STRIDE == 0:
            raise RuntimeError("injected wrapper crash (resilience drill)")
        return super().run_config(*args, **kwargs)


def run_resilient_campaign(seed_base=0):
    program = BENCHMARKS["lu"](inject=True)
    config = CampaignConfig(
        seeds=[seed_base + s for s in range(16)],
        plans=default_plan_matrix(2, ["none", "downgrade", "crash"]),
        budget_steps=200_000,
        retries=0,
    )
    result = run_campaign(program, config, tool=FlakyTool())
    baseline = Home().check(
        program, nprocs=2, num_threads=2, seed=seed_base
    )
    return result, baseline


def test_findings_survive_25pct_run_failures(benchmark, bench_seed):
    result, baseline = benchmark.pedantic(
        run_resilient_campaign,
        kwargs={"seed_base": bench_seed},
        rounds=1,
        iterations=1,
    )
    counts = result.status_counts()
    failed = counts.get(STATUS_ERROR, 0)
    total = len(result.outcomes)
    print()
    print(f"campaign cells: {total}; forced failures: {failed} "
          f"({100 * failed / total:.0f}%); "
          f"analyzable: {result.analyzable_runs}")
    print(f"baseline classes: {len(baseline.violations.classes())}; "
          f"campaign classes: {len(result.report.classes())}")

    # a quarter of the runs really did die...
    assert failed == total // _FAILURE_STRIDE
    assert not result.degraded
    # ...yet every Table-1 class the clean single run finds survives
    campaign_classes = set(result.report.classes())
    assert set(baseline.violations.classes()) <= campaign_classes
    assert campaign_classes >= set(ALL_VIOLATION_CLASSES)
