"""Benchmark: regenerate Figure 4 — LU-MZ execution time vs processes.

Paper shape: Base < HOME < MARMOT/ITC, all series falling (then
flattening) as processes grow; HOME stays the cheapest checker at scale.
Values are virtual-time units, not EC2 seconds.
"""

from repro.experiments import execution_time_figure


def test_fig4_lu_mz_execution_time(benchmark, proc_sweep, bench_seed):
    fig = benchmark.pedantic(
        execution_time_figure,
        args=("lu",),
        kwargs={"procs": proc_sweep, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(fig.render())
    base = fig.get("Base")
    ys = base.ys()
    # Strong scaling with a fixed serial fraction: time falls, then
    # flattens — allow a 2% wobble in the flat tail.
    for earlier, later in zip(ys, ys[1:]):
        assert later <= earlier * 1.02, "base time must fall (or flatten) with P"
    p_max = max(proc_sweep)
    assert (
        base.at(p_max)
        < fig.get("HOME").at(p_max)
        < fig.get("MARMOT").at(p_max)
        < fig.get("ITC").at(p_max)
    ), "tool ordering at scale must match the paper"
    benchmark.extra_info["series"] = {
        s.name: {str(p): round(v, 1) for p, v in s.points.items()}
        for s in fig.series
    }
