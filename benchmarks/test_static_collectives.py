"""Static collective-matching pass benchmark.

Times the PARCOACH-family collective-divergence pass across the NPB-MZ
suite (clean kernels, divergent variants and their matched twins) and
measures the payoff of divergence-directed narrowing: collective
monitoring only switches on when the static pass produced candidates,
so candidate-free programs record zero ``CollectiveArrive`` events.
The point being measured: the pass must stay a small fraction of the
static phase, every divergent injection must surface as a candidate,
and the matched twins must be pruned (not silently missed).
"""

import time

from repro.analysis.static_ import run_static_analysis
from repro.analysis.static_.collectives import (
    PRUNE_DIV_BALANCED,
    PRUNE_DIV_SERIAL,
)
from repro.events import CollectiveArrive
from repro.home import Home
from repro.workloads.npb import BENCHMARKS, SPECS, build_divergent_npb

EXPECTED_KINDS = {
    "collective-order": 1,
    "barrier-divergence": 2,
    "mpi-collective": 1,
}


def _workloads():
    out = {name: build(inject=True) for name, build in BENCHMARKS.items()}
    for name, spec in SPECS.items():
        out[f"{name}-div"] = build_divergent_npb(spec)
        out[f"{name}-matched"] = build_divergent_npb(spec, fixed=True)
    return out


def _static_sweep(collectives):
    reports = {}
    for name, program in _workloads().items():
        start = time.perf_counter()
        report = run_static_analysis(program, collectives=collectives)
        elapsed = time.perf_counter() - start
        reports[name] = (report, elapsed)
    return reports


def _collective_events(report):
    return sum(
        1 for e in report.execution.log if type(e) is CollectiveArrive
    )


def test_collective_pass_candidates(benchmark):
    reports = benchmark.pedantic(
        _static_sweep, args=(True,), rounds=1, iterations=1
    )

    print()
    print("static collective pass on NPB-MZ (clean / divergent / matched)")
    print(f"  {'bench':<12} {'cands':>6} {'sites':>6} {'pruned':>7} {'ms':>7}")
    for name, (report, elapsed) in reports.items():
        coll = report.collectives
        pruned = sum(coll.pruned.values())
        print(f"  {name:<12} {len(coll.candidates):>6} "
              f"{len(coll.sites):>6} {pruned:>7} {elapsed * 1e3:>7.1f}")
        if name.endswith("-div"):
            # every divergence injection surfaces, with the right kind
            kinds = {}
            for cand in coll.candidates:
                kinds[cand.kind] = kinds.get(cand.kind, 0) + 1
            assert kinds == EXPECTED_KINDS
        else:
            # clean kernels and matched twins stay candidate-free
            assert not coll.candidates
        if name.endswith("-matched"):
            # the fixes register as prunes, not silence: the balanced
            # arms and the master-funneled allreduce each leave a mark
            assert coll.pruned[PRUNE_DIV_BALANCED] >= 1
            assert coll.pruned[PRUNE_DIV_SERIAL] >= 1

    benchmark.extra_info["divergent_candidates"] = sum(
        len(r.collectives.candidates)
        for name, (r, _) in reports.items()
        if name.endswith("-div")
    )
    benchmark.extra_info["matched_pruned"] = sum(
        sum(r.collectives.pruned.values())
        for name, (r, _) in reports.items()
        if name.endswith("-matched")
    )


def test_collective_pass_runtime_overhead():
    """The collective pass must not dominate the static phase."""
    slow = 0.0
    fast = 0.0
    for name, program in _workloads().items():
        start = time.perf_counter()
        run_static_analysis(program, collectives=False)
        fast += time.perf_counter() - start
        start = time.perf_counter()
        run_static_analysis(program, collectives=True)
        slow += time.perf_counter() - start
    print(f"\nstatic phase: {fast * 1e3:.1f} ms without collectives, "
          f"{slow * 1e3:.1f} ms with ({slow / fast:.1f}x)")
    # generous bound: the pass stays within an order of magnitude of
    # the rest of the static phase
    assert slow < fast * 10


def test_narrowing_event_reduction(benchmark):
    """Divergence-directed monitoring versus the candidate-free twin."""

    def _sweep():
        rows = {}
        for kind in ("divergent", "matched"):
            program = build_divergent_npb(fixed=kind == "matched")
            rows[kind] = Home().check(
                program, nprocs=2, num_threads=2, seed=0
            )
        return rows

    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print("divergence-directed narrowing: collective events (LU-MZ)")
    print(f"  {'variant':<10} {'cands':>6} {'arrive-ev':>10} "
          f"{'confirmed':>10}")
    for kind, report in rows.items():
        triage = report.extras.get("divergence_triage") or {"confirmed": []}
        print(f"  {kind:<10} {report.extras['divergence_candidates']:>6} "
              f"{_collective_events(report):>10} "
              f"{len(triage['confirmed']):>10}")

    divergent = rows["divergent"]
    # monitoring switched on, and every candidate was confirmed
    assert _collective_events(divergent) > 0
    assert len(divergent.extras["divergence_triage"]["confirmed"]) == 4
    matched = rows["matched"]
    # candidate-free twin: monitoring stays off entirely
    assert _collective_events(matched) == 0
    assert not matched.execution.config.monitor_collectives
    benchmark.extra_info["divergent_arrivals"] = _collective_events(divergent)
    benchmark.extra_info["matched_arrivals"] = _collective_events(matched)
