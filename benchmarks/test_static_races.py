"""Static race pass benchmark.

Times the race pass across the NPB-MZ suite (clean, injected, racy and
clause-fixed variants) and measures the payoff of race-directed
narrowing: the number of runtime memory events HOME monitors versus the
monitor-everything ITC model on the same racy program.  The point being
measured: the race pass must stay a small fraction of the static phase
while cutting the dynamic phase's monitoring load by an order of
magnitude on race-free code.
"""

import time

from repro.analysis.static_ import run_static_analysis
from repro.baselines import IntelThreadChecker
from repro.events import MemAccess
from repro.home import Home
from repro.workloads.npb import BENCHMARKS, SPECS, build_racy_npb


def _workloads():
    out = {name: build(inject=True) for name, build in BENCHMARKS.items()}
    for name, spec in SPECS.items():
        out[f"{name}-racy"] = build_racy_npb(spec)
        out[f"{name}-fixed"] = build_racy_npb(spec, fixed=True)
    return out


def _static_sweep(races):
    reports = {}
    for name, program in _workloads().items():
        start = time.perf_counter()
        report = run_static_analysis(program, races=races)
        elapsed = time.perf_counter() - start
        reports[name] = (report, elapsed)
    return reports


def _mem_events(report):
    return sum(1 for e in report.execution.log if type(e) is MemAccess)


def test_race_pass_candidates(benchmark):
    with_races = benchmark.pedantic(
        _static_sweep, args=(True,), rounds=1, iterations=1
    )

    print()
    print("static race pass on NPB-MZ (clean / racy / clause-fixed)")
    print(f"  {'bench':<9} {'cands':>6} {'vars':>5} {'pruned':>7} "
          f"{'unres':>6} {'ms':>7}")
    for name, (report, elapsed) in with_races.items():
        races = report.races
        print(f"  {name:<9} {len(races.candidates):>6} "
              f"{len(races.monitored_vars):>5} {races.total_pruned:>7} "
              f"{len(races.unresolved):>6} {elapsed * 1e3:>7.1f}")
        if name.endswith("-racy"):
            # every racy variant must flag all three injected variables
            assert races.monitored_vars == {"field", "local_norm", "tmp"}
        else:
            # clean and clause-fixed variants stay candidate-free
            assert not races.candidates
        # the pruning machinery must actually have fired somewhere
        assert races.total_pruned > 0

    benchmark.extra_info["racy_candidates"] = sum(
        len(r.races.candidates)
        for name, (r, _) in with_races.items()
        if name.endswith("-racy")
    )


def test_race_pass_runtime_overhead():
    """The race pass must not dominate the static phase."""
    slow = 0.0
    fast = 0.0
    for name, program in _workloads().items():
        start = time.perf_counter()
        run_static_analysis(program, races=False)
        fast += time.perf_counter() - start
        start = time.perf_counter()
        run_static_analysis(program, races=True)
        slow += time.perf_counter() - start
    print(f"\nstatic phase: {fast * 1e3:.1f} ms without races, "
          f"{slow * 1e3:.1f} ms with ({slow / fast:.1f}x)")
    # generous bound: the race pass stays within an order of magnitude
    # of the rest of the static phase
    assert slow < fast * 10


def test_narrowing_event_reduction(benchmark):
    """HOME's narrowed monitoring versus ITC's monitor-everything."""

    def _sweep():
        rows = {}
        for kind in ("racy", "fixed"):
            program = build_racy_npb(fixed=kind == "fixed")
            home = Home().check(program, nprocs=2, num_threads=2, seed=0)
            itc = IntelThreadChecker().check(
                program, nprocs=2, num_threads=2, seed=0
            )
            rows[kind] = (home, itc)
        return rows

    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print("race-directed narrowing: monitored memory events (LU-MZ)")
    print(f"  {'variant':<7} {'HOME-vars':>9} {'HOME-ev':>8} "
          f"{'ITC-ev':>7} {'HOME-t':>8} {'ITC-t':>8}")
    for kind, (home, itc) in rows.items():
        nvars = len(home.extras.get("monitored_vars", []))
        print(f"  {kind:<7} {nvars:>9} {_mem_events(home):>8} "
              f"{_mem_events(itc):>7} {home.makespan:>8.0f} "
              f"{itc.makespan:>8.0f}")

    home, itc = rows["racy"]
    # narrowed monitoring watches fewer events, and finds the races
    assert 0 < _mem_events(home) < _mem_events(itc)
    assert "DataRace" in home.violations.classes()
    home, itc = rows["fixed"]
    # race-free program: monitoring stays off entirely, ITC pays anyway
    assert _mem_events(home) == 0 < _mem_events(itc)
    assert home.makespan < itc.makespan
    benchmark.extra_info["racy_home_events"] = _mem_events(rows["racy"][0])
    benchmark.extra_info["racy_itc_events"] = _mem_events(rows["racy"][1])
