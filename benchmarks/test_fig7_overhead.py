"""Benchmark: regenerate Figure 7 — average checking overhead (%) vs
process count, averaged over LU/BT/SP.

Paper bands: HOME 16-45%, Marmot 15-56%, ITC up to ~200%; every tool's
overhead grows with the number of processes, and Marmot grows fastest
(its central analysis process serializes).
"""

from repro.experiments import overhead_band, overhead_figure


def test_fig7_average_overhead(benchmark, proc_sweep, bench_seed):
    fig = benchmark.pedantic(
        overhead_figure,
        kwargs={"procs": proc_sweep, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(fig.render(fmt="{:.0f}%"))
    print("paper bands: HOME 16-45%, MARMOT 15-56%, ITC up to ~200%")

    home_lo, home_hi = overhead_band(fig, "HOME")
    assert 10 <= home_lo <= 25, f"HOME low end {home_lo:.0f}% vs paper 16%"
    assert 30 <= home_hi <= 55, f"HOME high end {home_hi:.0f}% vs paper 45%"

    marmot_lo, marmot_hi = overhead_band(fig, "MARMOT")
    assert 10 <= marmot_lo <= 30, f"MARMOT low end {marmot_lo:.0f}% vs paper 15%"
    assert 35 <= marmot_hi <= 80, f"MARMOT high end {marmot_hi:.0f}% vs paper 56%"

    itc_lo, itc_hi = overhead_band(fig, "ITC")
    assert itc_hi >= 120, f"ITC high end {itc_hi:.0f}% vs paper ~200%"
    assert itc_lo > max(home_hi, marmot_hi) or itc_lo > 70, (
        "ITC must dominate the other tools"
    )

    for tool in ("HOME", "MARMOT", "ITC"):
        ys = fig.get(tool).ys()
        assert ys[0] < ys[-1], f"{tool} overhead must grow with process count"

    benchmark.extra_info["bands"] = {
        "HOME": [round(home_lo), round(home_hi)],
        "MARMOT": [round(marmot_lo), round(marmot_hi)],
        "ITC": [round(itc_lo), round(itc_hi)],
    }
