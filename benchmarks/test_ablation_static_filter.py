"""Ablation: HOME's static filtering (selective instrumentation).

The paper's overhead-reduction claim: instrumenting only MPI calls in
hybrid (omp parallel) regions — "the correct code sections are filtered
out" — cuts monitoring cost without losing detections.  This ablation
runs HOME with the filter on (``hybrid-only``) and off (``all``) and
compares both cost and findings.
"""

from repro.home import Home, HomeOptions
from repro.workloads.npb import build_lu_mz, injection_registry, score_report


def _run_both(nprocs=8, seed=0):
    program = build_lu_mz(inject=True)
    registry = injection_registry(program)
    filtered = Home(HomeOptions(instrument_policy="hybrid-only")).check(
        program, nprocs=nprocs, seed=seed
    )
    unfiltered = Home(HomeOptions(instrument_policy="all")).check(
        program, nprocs=nprocs, seed=seed
    )
    return registry, filtered, unfiltered


def test_static_filter_reduces_overhead_without_losing_detections(benchmark):
    registry, filtered, unfiltered = benchmark.pedantic(
        _run_both, rounds=1, iterations=1
    )

    score_f = score_report(filtered.violations, registry)
    score_u = score_report(unfiltered.violations, registry)
    print()
    print("ablation: HOME selective instrumentation (LU-MZ, 8 procs)")
    print(f"  hybrid-only: makespan={filtered.makespan:.0f} "
          f"instrumented={filtered.extras['instrumented_sites']} "
          f"filtered={filtered.extras['filtered_sites']} "
          f"detected={score_f['detected']}/6")
    print(f"  instrument-all: makespan={unfiltered.makespan:.0f} "
          f"instrumented={unfiltered.extras['instrumented_sites']} "
          f"detected={score_u['detected']}/6")

    # Same detections either way — the filter drops only error-free code.
    assert score_f["detected"] == score_u["detected"] == 6
    assert score_f["false_positives"] == score_u["false_positives"] == 0
    # But selective monitoring is cheaper.
    assert filtered.makespan < unfiltered.makespan
    assert filtered.extras["instrumented_sites"] < unfiltered.extras["instrumented_sites"]
    benchmark.extra_info["makespan_filtered"] = filtered.makespan
    benchmark.extra_info["makespan_unfiltered"] = unfiltered.makespan
