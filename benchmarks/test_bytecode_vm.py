"""Bytecode-VM benchmarks: compile cost, dispatch rates, NPB speedup.

Three claims backed by numbers:

* compilation is cheap enough to be a non-event (one-time, well under
  the cost of a single run) and memoized, so campaign cells re-running
  one program pay it once per worker process;
* per-construct dispatch — tight arithmetic loops, call-heavy code,
  OMP worksharing — is at least as fast as the tree-walk everywhere,
  and substantially faster on the loop/call paths the superinstructions
  target;
* end-to-end NPB-MZ stepping rate beats the tree-walk by a solid
  multiple.  The measured rates and the VM-vs-tree-walk speedup are
  exported into ``BENCH_campaign.json`` next to the gated
  ``stepping_rate`` (which ``test_campaign_parallel.py`` owns).
"""

import time

from repro.minilang import parse, validate
from repro.runtime import RunConfig
from repro.runtime.bytecode.compiler import clear_compile_cache, compile_program
from repro.runtime.bytecode.vm import BytecodeInterpreter
from repro.runtime.interpreter import Interpreter
from repro.workloads.npb import BENCHMARKS

#: one-time lowering of a full NPB-MZ program must stay far below the
#: cost of a single run of it (generous for shared-runner noise)
_COMPILE_BUDGET_S = 0.25

#: end-to-end VM speedup over the tree-walk the suite insists on.
#: Measured ~2.6x on the reference box; 1.5x leaves noise headroom.
_MIN_E2E_SPEEDUP = 1.5


def _rate(interp_cls, program, reps=3, **cfg):
    """Best-of-*reps* stepping rate for one engine."""
    best, steps = 0.0, 0
    for _ in range(reps):
        config = RunConfig(nprocs=2, num_threads=2, **cfg)
        start = time.perf_counter()
        result = interp_cls(program, config).run()
        elapsed = time.perf_counter() - start
        steps = result.stats["scheduler_steps"]
        best = max(best, steps / elapsed)
    return best, steps


class TestCompileCost:
    def test_compile_time_budget(self):
        program = BENCHMARKS["lu"](inject=False)
        clear_compile_cache()
        start = time.perf_counter()
        compiled = compile_program(program)
        elapsed = time.perf_counter() - start
        print(f"\nLU compile: {elapsed * 1e3:.2f} ms")
        assert compiled.codes
        assert elapsed < _COMPILE_BUDGET_S

    def test_compilation_is_memoized(self):
        program = BENCHMARKS["bt"](inject=False)
        clear_compile_cache()
        first = compile_program(program)
        assert compile_program(program) is first

    def test_shared_across_interpreter_instances(self):
        """A campaign cell's repeated runs of one program object reuse
        one compilation — the compile-once contract."""
        program = BENCHMARKS["sp"](inject=False)
        clear_compile_cache()
        a = BytecodeInterpreter(program, RunConfig(nprocs=2, num_threads=2))
        b = BytecodeInterpreter(program, RunConfig(nprocs=2, num_threads=2))
        assert a.compiled is b.compiled


_MICRO = {
    # the inner-loop shape of the NPB zone kernels: indexed update +
    # metered compute, where the call-statement and compute
    # superinstructions apply
    "arith-loop": """
program m;
var field[16];
func main() {
    for (var i = 0; i < 3000; i = i + 1) {
        field[i % 16] = field[i % 16] + 1.0;
        compute(2);
    }
}
""",
    # call-heavy: user-function dispatch via the compiled entry path
    "calls": """
program m;
func f(x) { return x + 1; }
func g(x) { return f(x) + f(x + 1); }
func main() {
    var s = 0;
    for (var i = 0; i < 1500; i = i + 1) { s = g(s) % 1000; }
    print(s);
}
""",
    # OMP worksharing: team spin-up, dynamic chunking, critical
    "omp-for": """
program m;
var total = 0;
func main() {
    omp parallel num_threads(2) {
        omp for schedule(dynamic, 4) for (var i = 0; i < 600; i = i + 1) {
            omp critical { total = total + 1; }
        }
    }
    print(total);
}
""",
}


class TestPerConstructDispatch:
    def test_microbenches_never_regress_vs_tree_walk(self):
        print()
        for name, src in _MICRO.items():
            program = parse(src)
            validate(program)
            ast_rate, steps = _rate(Interpreter, program)
            vm_rate, vm_steps = _rate(BytecodeInterpreter, program)
            assert vm_steps == steps
            print(
                f"{name:>12}: ast {ast_rate:>10,.0f}  "
                f"vm {vm_rate:>10,.0f} steps/s  "
                f"({vm_rate / ast_rate:.2f}x, {steps} steps)"
            )
            # noise guard rather than a speedup claim: the VM must never
            # be slower than the tree-walk on any construct class
            assert vm_rate > ast_rate * 0.85, name

    def test_hot_loop_superinstructions_pay_off(self):
        """The targeted path — indexed arithmetic + compute() in a tight
        loop — must show a real multiple, not parity."""
        program = parse(_MICRO["arith-loop"])
        validate(program)
        ast_rate, _ = _rate(Interpreter, program)
        vm_rate, _ = _rate(BytecodeInterpreter, program)
        print(f"\narith-loop speedup: {vm_rate / ast_rate:.2f}x")
        assert vm_rate > ast_rate * 1.3


class TestEndToEndNPB:
    def test_lu_stepping_rate_speedup(self, bench_campaign_stats):
        program = BENCHMARKS["lu"](inject=False)
        ast_rate, steps = _rate(Interpreter, program)
        vm_rate, vm_steps = _rate(BytecodeInterpreter, program)
        assert vm_steps == steps, "engines disagree on step count"
        speedup = vm_rate / ast_rate
        print(
            f"\nNPB-MZ LU: ast {ast_rate:,.0f}  vm {vm_rate:,.0f} steps/s "
            f"({speedup:.2f}x, {steps} steps)"
        )
        bench_campaign_stats["stepping_rate_ast"] = round(ast_rate, 1)
        bench_campaign_stats["stepping_rate_bytecode"] = round(vm_rate, 1)
        bench_campaign_stats["vm_speedup"] = round(speedup, 2)
        assert speedup >= _MIN_E2E_SPEEDUP
