"""Benchmark: regenerate the paper's detection-count table (§V-B).

Paper::

    Benchmarks      HOME  ITC  Marmot
    NPB-MZ LU (6)   6     5    5
    NPB-MZ BT (6)   6     7    6
    NPB-MZ SP (6)   6     6    5
"""

from repro.experiments import PAPER_TABLE1, run_table1, table1_data


def test_table1_detection_counts(benchmark, bench_seed):
    cells = benchmark.pedantic(
        run_table1, kwargs={"seed": bench_seed}, rounds=1, iterations=1
    )
    table = table1_data(cells)
    print()
    print(table.render())
    for (bench_name, tool), cell in cells.items():
        expected = PAPER_TABLE1[(bench_name, tool)]
        assert cell.score == expected, (
            f"{bench_name}/{tool}: reproduced {cell.score}, paper {expected}"
        )
    benchmark.extra_info["cells"] = {
        f"{b}/{t}": c.score for (b, t), c in cells.items()
    }
