"""Benchmark: parallel campaign engine throughput and determinism.

The acceptance claim under test: on the 16-seed x 3-plan racy NPB-MZ LU
campaign, ``jobs=4`` beats ``jobs=1`` by >= 1.5x wall-clock while the
checkpoint file stays byte-for-byte identical (the worker count is only
a wall-clock knob).  The measured curve, the serial cell throughput and
the raw interpreter stepping rate are exported via
``bench_campaign_stats`` into ``BENCH_campaign.json`` for CI archival
and regression gating.

The speedup assertion is guarded on the host's core count: on a
single-core box parallel dispatch cannot beat serial and the run only
records the (honest) curve.
"""

import os
import time

from repro.campaign import CampaignConfig, default_plan_matrix, run_campaign
from repro.runtime import RunConfig, make_interpreter
from repro.workloads import BENCHMARKS

_SEEDS = 16
_PLANS = ("none", "downgrade", "crash")
_JOB_SWEEP = (1, 2, 4)
#: wall-clock speedup jobs=4 must reach over jobs=1 (only asserted when
#: the host actually has >= 4 cores to parallelize onto)
_MIN_SPEEDUP = 1.5


def _config(jobs, checkpoint):
    return CampaignConfig(
        seeds=range(_SEEDS),
        plans=default_plan_matrix(2, list(_PLANS)),
        budget_steps=200_000,
        retries=0,
        jobs=jobs,
        record_timing=False,
        checkpoint=checkpoint,
    )


def test_parallel_speedup_16x3(benchmark, bench_campaign_stats, tmp_path):
    program = BENCHMARKS["lu"](inject=True)
    cells = _SEEDS * len(_PLANS)
    wall = {}
    blobs = {}

    def sweep():
        for jobs in _JOB_SWEEP:
            path = tmp_path / f"ck-{jobs}.json"
            start = time.perf_counter()
            result = run_campaign(program, _config(jobs, str(path)))
            wall[jobs] = time.perf_counter() - start
            blobs[jobs] = path.read_bytes()
            assert not result.degraded
            assert len(result.outcomes) == cells
        return wall

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    speedup = {jobs: wall[1] / wall[jobs] for jobs in _JOB_SWEEP}
    throughput = cells / wall[1]
    cores = os.cpu_count() or 1
    print()
    print(f"campaign: {cells} cells ({_SEEDS} seeds x {len(_PLANS)} plans), "
          f"{cores} cores")
    print(f"serial cell throughput: {throughput:.1f} cells/s")
    for jobs in _JOB_SWEEP:
        print(f"  jobs={jobs}: {wall[jobs]:6.2f}s  "
              f"speedup {speedup[jobs]:.2f}x")

    bench_campaign_stats.update({
        "cells": cells,
        "seeds": _SEEDS,
        "plans": list(_PLANS),
        "cores": cores,
        "cell_throughput": round(throughput, 3),
        "wall_seconds": {str(j): round(wall[j], 4) for j in _JOB_SWEEP},
        "speedup": {str(j): round(speedup[j], 3) for j in _JOB_SWEEP},
    })

    # the determinism guarantee holds unconditionally...
    assert blobs[2] == blobs[1]
    assert blobs[4] == blobs[1]
    # ...the speedup claim only where there are cores to win on
    if cores >= 4:
        assert speedup[4] >= _MIN_SPEEDUP, (
            f"jobs=4 speedup {speedup[4]:.2f}x < {_MIN_SPEEDUP}x "
            f"on a {cores}-core host"
        )


def test_interpreter_stepping_rate(bench_campaign_stats):
    """Raw scheduler stepping rate on fault-free LU (best of 3): the
    single-run hot-path number CI gates on.  Uses the configured engine
    (``REPRO_ENGINE``, bytecode by default) so the gated number tracks
    what campaigns actually run."""
    program = BENCHMARKS["lu"](inject=False)
    config = RunConfig(nprocs=2, num_threads=2)
    best_rate = 0.0
    steps = 0
    for _ in range(3):
        start = time.perf_counter()
        result = make_interpreter(program, config).run()
        elapsed = time.perf_counter() - start
        steps = result.stats["scheduler_steps"]
        best_rate = max(best_rate, steps / elapsed)
    print(
        f"\nstepping rate ({config.engine}): "
        f"{best_rate:,.0f} steps/s ({steps} steps)"
    )
    bench_campaign_stats["engine"] = config.engine
    bench_campaign_stats["scheduler_steps"] = steps
    bench_campaign_stats["stepping_rate"] = round(best_rate, 1)
    assert best_rate > 0
