"""Interprocedural-summary benchmark: precision gain and end-to-end
detection on the helper-chain NPB workload.

Measures exactly what the summary layer promises:

* **unresolved shrink** — previously-delegated interprocedural array
  accesses that the instantiated summaries now analyze statically must
  drop by at least half on the ``--npb ip`` workload (it reaches 100%
  there: every chain is linear) while the lexical answers on the plain
  racy suite are untouched;
* **zero missed** — every Table-1 violation class reachable only
  through 2–3 call levels is reported statically *and* confirmed
  dynamically;
* **cost** — the summary layer stays a small additive slice of the
  static phase.
"""

import time

from repro.analysis.static_ import run_static_analysis
from repro.home import Home
from repro.workloads.npb import (
    SPECS,
    build_interproc_npb,
    build_racy_npb,
    interproc_registry,
    score_report,
)


def _sweep():
    rows = {}
    for name, builder, kwargs in (
        ("ip-racy", build_interproc_npb, {}),
        ("ip-fixed", build_interproc_npb, {"fixed": True}),
        ("lu-racy", build_racy_npb, {"spec": SPECS["lu"]}),
        ("bt-racy", build_racy_npb, {"spec": SPECS["bt"]}),
    ):
        program = builder(**kwargs)
        start = time.perf_counter()
        lexical = run_static_analysis(
            program, summaries=False, cache=False
        )
        t_lexical = time.perf_counter() - start
        start = time.perf_counter()
        interproc = run_static_analysis(program, cache=False)
        t_interproc = time.perf_counter() - start
        rows[name] = (lexical, interproc, t_lexical, t_interproc)
    return rows


def test_unresolved_shrink_and_detection(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    print()
    print("interprocedural summaries: unresolved accesses and cost")
    print(f"  {'bench':<9} {'unres(lex)':>10} {'unres(ip)':>9} "
          f"{'resolved':>8} {'lex ms':>7} {'ip ms':>7}")
    for name, (lexical, interproc, t_lex, t_ip) in rows.items():
        before = len(lexical.races.unresolved)
        after = len(interproc.races.unresolved)
        print(f"  {name:<9} {before:>10} {after:>9} "
              f"{len(interproc.races.resolved_interproc):>8} "
              f"{t_lex * 1e3:>7.1f} {t_ip * 1e3:>7.1f}")

    # acceptance: >= 50% shrink on the chain workload
    lexical, interproc, _, _ = rows["ip-racy"]
    before = len(lexical.races.unresolved)
    after = len(interproc.races.unresolved)
    assert before >= 2 and after <= before // 2

    # the funneled twin is statically silent either way
    _, fixed_ip, _, _ = rows["ip-fixed"]
    assert not fixed_ip.candidates and not fixed_ip.races.candidates

    # summaries never *add* unresolved accesses on the lexical suite
    for name in ("lu-racy", "bt-racy"):
        lex, ip, _, _ = rows[name]
        assert len(ip.races.unresolved) <= len(lex.races.unresolved)
        assert ip.races.monitored_vars >= lex.races.monitored_vars


def test_chain_injections_zero_missed(benchmark):
    program = build_interproc_npb()

    def run():
        return Home().check(program, nprocs=2, num_threads=2, seed=0)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    score = score_report(report.violations, interproc_registry(program))

    print()
    print("helper-chain injection triage (static + dynamic confirm)")
    print(f"  detected={score['detected']} "
          f"fp={score['false_positives']} missed={score['missed']}")
    assert score["missed"] == []
    assert score["false_positives"] == 0
    assert score["detected"] == 7  # six chains + the init underclaim
