"""Study: checking overhead vs OpenMP team size.

Reproduces the paper's stated reason for running everything at 2
threads per process: "the overhead of Intel Thread Checker would be
very high with number increasing of threads in processes".  ITC's
per-access, per-thread instrumentation explodes with team size; HOME's
monitored-variable filtering stays far cheaper at every size.
"""

from repro.experiments import (
    DEFAULT_THREAD_SWEEP,
    build_thread_sweep_program,
    thread_overhead_figure,
)


def test_overhead_vs_thread_count(benchmark):
    fig = benchmark.pedantic(
        thread_overhead_figure,
        args=(build_thread_sweep_program,),
        kwargs={"threads": DEFAULT_THREAD_SWEEP, "nprocs": 4},
        rounds=1,
        iterations=1,
    )
    print()
    print(fig.render(fmt="{:.0f}%"))

    itc = fig.get("ITC")
    home = fig.get("HOME")
    t_min, t_max = min(DEFAULT_THREAD_SWEEP), max(DEFAULT_THREAD_SWEEP)

    # ITC's overhead explodes with threads (the paper's complaint)...
    assert itc.at(t_max) > 5 * itc.at(t_min)
    assert itc.at(t_max) > 300
    # ...and dominates HOME at every team size.
    for t in DEFAULT_THREAD_SWEEP:
        assert itc.at(t) > home.at(t)
    # HOME remains the practical choice even at 8 threads.
    assert itc.at(t_max) > 3 * home.at(t_max)

    benchmark.extra_info["series"] = {
        s.name: {str(t): round(v) for t, v in s.points.items()}
        for s in fig.series
    }
