"""Micro-benchmarks of the durable campaign service substrate.

The crash-safe queue sits on the hot path of every supervised cell
(lease, heartbeat, complete — each a journaled, fsync'd append), so its
throughput bounds how fine-grained campaign cells can get before
durability overhead shows.  These pin the journal append/replay rates
and the end-to-end queue op rate on a tmpfs-backed temp dir.
"""

import pytest

from repro.campaign import (
    CellTask,
    DurableWorkQueue,
    Journal,
    RunOutcome,
    replay_journal,
)

_N = 200


@pytest.fixture()
def journal_path(tmp_path):
    return str(tmp_path / "bench.journal.jsonl")


def test_journal_append_throughput(benchmark, journal_path):
    outcome = RunOutcome(seed=0, plan="none", status="ok").as_dict()

    def append_batch():
        with Journal(journal_path, {"bench": True}, fresh=True) as journal:
            for i in range(_N):
                journal.append("done", cell=f"{i}/none", outcome=outcome)

    benchmark.pedantic(append_batch, rounds=3, iterations=1)


def test_journal_replay_throughput(benchmark, journal_path):
    with Journal(journal_path, {"bench": True}, fresh=True) as journal:
        for i in range(_N):
            journal.append("lease", cell=f"{i}/none", worker="w0", attempt=1)
            journal.append(
                "done", cell=f"{i}/none",
                outcome=RunOutcome(seed=i, plan="none").as_dict(),
            )
    replay = benchmark(replay_journal, journal_path)
    assert len(replay.records) == 2 * _N
    assert not replay.truncated


def test_queue_lease_complete_cycle(benchmark, journal_path):
    """Full durable cycle per cell: acquire + heartbeat + complete."""

    def drain_queue():
        cells = [CellTask(i, i, "none", None) for i in range(_N)]
        q = DurableWorkQueue(
            cells, Journal(journal_path, {"bench": True}, fresh=True),
        )
        while not q.all_resolved():
            lease = q.acquire("w0", 0.0)
            q.heartbeat(lease.task.index, 1.0)
            q.complete(
                lease.task.index,
                RunOutcome(seed=lease.task.seed, plan="none", status="ok"),
            )
        q.journal.close()
        return q

    q = benchmark.pedantic(drain_queue, rounds=3, iterations=1)
    assert len(q.outcome_list()) == _N


def test_queue_restore_from_journal(benchmark, journal_path):
    cells = [CellTask(i, i, "none", None) for i in range(_N)]
    q = DurableWorkQueue(
        cells, Journal(journal_path, {"bench": True}, fresh=True),
    )
    while not q.all_resolved():
        lease = q.acquire("w0", 0.0)
        q.complete(
            lease.task.index,
            RunOutcome(seed=lease.task.seed, plan="none", status="ok"),
        )
    q.journal.close()

    def restore():
        fresh = DurableWorkQueue(
            [CellTask(i, i, "none", None) for i in range(_N)]
        )
        fresh.restore(replay_journal(journal_path))
        return fresh

    restored = benchmark(restore)
    assert restored.all_resolved()
