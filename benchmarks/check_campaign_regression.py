"""CI gate: fail on a >2x interpreter stepping-rate regression.

Reads the ``BENCH_campaign.json`` written by the benchmark session (see
``benchmarks/conftest.py``) and compares the measured stepping rate
against ``benchmarks/baselines/campaign_baseline.json``.  The threshold
is deliberately loose (half the baseline) so shared-runner noise never
trips it — only a real hot-path regression does.

Usage::

    python benchmarks/check_campaign_regression.py \
        [BENCH_campaign.json] [benchmarks/baselines/campaign_baseline.json]
"""

import json
import sys


def main(argv):
    current_path = argv[1] if len(argv) > 1 else "BENCH_campaign.json"
    baseline_path = (
        argv[2]
        if len(argv) > 2
        else "benchmarks/baselines/campaign_baseline.json"
    )
    with open(current_path) as fh:
        current = json.load(fh)
    with open(baseline_path) as fh:
        baseline = json.load(fh)

    rate = current.get("stepping_rate")
    if rate is None:
        print(f"error: no stepping_rate in {current_path}", file=sys.stderr)
        return 2
    floor = baseline["stepping_rate"] / baseline.get("max_regression", 2.0)
    verdict = "OK" if rate >= floor else "REGRESSION"
    print(
        f"stepping rate: {rate:,.0f} steps/s "
        f"(baseline {baseline['stepping_rate']:,.0f}, floor {floor:,.0f}) "
        f"-> {verdict}"
    )
    if rate < floor:
        print(
            f"error: stepping rate regressed more than "
            f"{baseline.get('max_regression', 2.0):g}x below baseline",
            file=sys.stderr,
        )
        return 1
    speedup = current.get("speedup", {})
    if speedup:
        curve = ", ".join(
            f"jobs={j}: {s:.2f}x" for j, s in sorted(speedup.items())
        )
        print(f"campaign speedup ({current.get('cores', '?')} cores): {curve}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
