"""Benchmark-harness configuration.

Every module here regenerates one of the paper's evaluation artefacts
(the detection table or one of figures 4-7) and prints the reproduced
rows/series next to the paper's values.  ``pytest benchmarks/
--benchmark-only`` runs them all.

Set ``REPRO_BENCH_PROCS`` (comma-separated) to override the process
sweep, e.g. ``REPRO_BENCH_PROCS=2,8 pytest benchmarks/`` for a quick
pass.

The campaign-engine benchmarks additionally feed a session-scoped stats
dict; at session end it is written to ``BENCH_campaign.json`` (override
the path with ``REPRO_BENCH_CAMPAIGN_JSON``) so CI can archive cell
throughput, stepping rate and the jobs=1/2/4 speedup curve and gate on
regressions.
"""

import json
import os

import pytest

#: filled by the campaign benchmarks (test_campaign_parallel.py);
#: written out once per session by :func:`pytest_sessionfinish`
_CAMPAIGN_STATS = {}


@pytest.fixture(scope="session")
def bench_campaign_stats():
    """Mutable session-wide sink for campaign-engine measurements."""
    return _CAMPAIGN_STATS


def pytest_sessionfinish(session, exitstatus):
    if not _CAMPAIGN_STATS:
        return
    out = os.environ.get("REPRO_BENCH_CAMPAIGN_JSON", "BENCH_campaign.json")
    with open(out, "w") as fh:
        json.dump(_CAMPAIGN_STATS, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\n[bench] campaign stats written to {out}")


def _proc_sweep():
    raw = os.environ.get("REPRO_BENCH_PROCS")
    if raw:
        return tuple(int(x) for x in raw.split(","))
    return (2, 4, 8, 16, 32, 64)


@pytest.fixture(scope="session")
def proc_sweep():
    return _proc_sweep()


@pytest.fixture(scope="session")
def bench_seed():
    return 0
