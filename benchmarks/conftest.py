"""Benchmark-harness configuration.

Every module here regenerates one of the paper's evaluation artefacts
(the detection table or one of figures 4-7) and prints the reproduced
rows/series next to the paper's values.  ``pytest benchmarks/
--benchmark-only`` runs them all.

Set ``REPRO_BENCH_PROCS`` (comma-separated) to override the process
sweep, e.g. ``REPRO_BENCH_PROCS=2,8 pytest benchmarks/`` for a quick
pass.
"""

import os

import pytest


def _proc_sweep():
    raw = os.environ.get("REPRO_BENCH_PROCS")
    if raw:
        return tuple(int(x) for x in raw.split(","))
    return (2, 4, 8, 16, 32, 64)


@pytest.fixture(scope="session")
def proc_sweep():
    return _proc_sweep()


@pytest.fixture(scope="session")
def bench_seed():
    return 0
