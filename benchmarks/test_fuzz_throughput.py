"""Benchmark: differential-fuzzing throughput.

Measures end-to-end fuzzing throughput — generate, run under every
oracle (each program executes under BOTH engines via the engine
oracle), triage — over a fixed-seed corpus, and exports programs/s
plus the per-engine stepping rates observed inside the oracle harness
via ``bench_campaign_stats`` into ``BENCH_campaign.json`` for CI
archival alongside the campaign numbers.

The sweep itself is also an assertion: the fixed-seed corpus must
come back clean (zero divergences, zero crashes) — a regression here
is a correctness bug surfacing as a benchmark failure.
"""

import time

from repro.fuzz import FuzzConfig, run_fuzz

_SEEDS = 30


def test_fuzz_throughput(benchmark, bench_campaign_stats):
    config = FuzzConfig(seeds=_SEEDS, reduce=False)
    holder = {}

    def sweep():
        start = time.perf_counter()
        report = run_fuzz(config)
        holder["wall"] = time.perf_counter() - start
        holder["report"] = report
        return report

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    report = holder["report"]
    assert report.clean, report.summary()
    assert len(report.outcomes) == _SEEDS

    data = report.as_dict()
    throughput = data["throughput"]
    assert throughput["programs_per_second"] > 0
    bench_campaign_stats["fuzz"] = {
        "seeds": _SEEDS,
        "wall_seconds": round(holder["wall"], 3),
        "programs_per_second": throughput["programs_per_second"],
        "engines": throughput["engines"],
    }
    print(
        f"\n[fuzz] {_SEEDS} programs in {holder['wall']:.2f}s "
        f"({throughput['programs_per_second']:.1f}/s); engines: "
        + ", ".join(
            f"{name} {stats['steps_per_second']:.0f} steps/s"
            for name, stats in sorted(throughput["engines"].items())
        )
    )
