"""Micro-benchmarks of the simulation infrastructure itself.

These justify the implementation choices the guides call for (profile
before optimizing): they track parser throughput, interpreter stepping
rate and the offline analyses' cost on a fixed workload, so regressions
in the substrate show up as benchmark deltas.
"""

import tracemalloc

import pytest

from repro.analysis.dynamic_.hybrid import analyze
from repro.analysis.dynamic_.vectorclock import VectorClock
from repro.analysis.static_ import run_static_analysis
from repro.home import Home
from repro.minilang import parse
from repro.runtime import Interpreter, RunConfig
from repro.workloads.npb import build_lu_mz, lu_mz_source


@pytest.fixture(scope="module")
def lu_source():
    return lu_mz_source(inject=True)


@pytest.fixture(scope="module")
def lu_home_run():
    home = Home()
    program, static = home.prepare(build_lu_mz(inject=True))
    config = home.run_config(nprocs=2, num_threads=2, seed=0)
    return Interpreter(program, config).run()


def test_parse_lu_benchmark(benchmark, lu_source):
    program = benchmark(parse, lu_source)
    assert program.name == "lu_mz"


def test_static_analysis_lu(benchmark):
    # cache=False: measure the analysis itself, not the memo lookup
    program = build_lu_mz(inject=True)
    report = benchmark(run_static_analysis, program, cache=False)
    assert report.instrumentation.n_instrumented > 0


def test_static_analysis_lu_cached(benchmark):
    """The memoized path campaigns hit after the first cell."""
    program = build_lu_mz(inject=True)
    run_static_analysis(program)  # warm the cache
    report = benchmark(run_static_analysis, program)
    assert report.instrumentation.n_instrumented > 0


def test_interpret_lu_base(benchmark):
    def run():
        return Interpreter(
            build_lu_mz(inject=False), RunConfig(nprocs=2, num_threads=2)
        ).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert not result.deadlocked


def test_hybrid_analysis_lu(benchmark, lu_home_run):
    reports = benchmark(analyze, lu_home_run.log)
    assert reports[0].pairs


# -- vector-clock hot path ---------------------------------------------------
#
# The happens-before replay executes one tick (and usually one or more
# joins) per event, so these dict-sized operations dominate the dynamic
# phase.  The immutable-with-cached-hash rework eliminated the
# copy-then-mutate double allocation in tick/join and made no-op joins
# and repeat hashes allocation-free; these benchmarks pin that down.


@pytest.fixture(scope="module")
def clocks():
    wide = VectorClock({tid: tid + 1 for tid in range(8)})
    behind = VectorClock({tid: 1 for tid in range(8)})
    return wide, behind


def test_vectorclock_tick(benchmark, clocks):
    wide, _ = clocks
    out = benchmark(wide.tick, 3)
    assert out.get(3) == wide.get(3) + 1


def test_vectorclock_join_noop(benchmark, clocks):
    wide, behind = clocks
    out = benchmark(wide.join, behind)
    assert out is wide  # no-op joins return self without allocating


def test_vectorclock_join_merge(benchmark, clocks):
    wide, behind = clocks
    out = benchmark(behind.join, wide)
    assert out.get(7) == 8


def test_vectorclock_hash_cached(benchmark, clocks):
    wide, _ = clocks
    hash(wide)  # first call computes and caches
    assert benchmark(hash, wide) == hash(wide)


def test_vectorclock_noop_join_and_hash_are_allocation_free(clocks):
    """Regression guard for the allocation profile (not a timing test):
    after warm-up, no-op joins and repeat hashes allocate nothing."""
    wide, behind = clocks
    wide.join(behind)
    hash(wide)
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        for _ in range(1000):
            wide.join(behind)
            hash(wide)
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    grown = sum(
        stat.size_diff
        for stat in after.compare_to(before, "lineno")
        if stat.size_diff > 0
    )
    # tracemalloc's own bookkeeping contributes a few hundred bytes;
    # 1000 dict copies would be ~100 KiB
    assert grown < 4096, f"hot path allocated {grown} bytes per 1000 ops"
