"""Micro-benchmarks of the simulation infrastructure itself.

These justify the implementation choices the guides call for (profile
before optimizing): they track parser throughput, interpreter stepping
rate and the offline analyses' cost on a fixed workload, so regressions
in the substrate show up as benchmark deltas.
"""

import pytest

from repro.analysis.dynamic_.hybrid import analyze
from repro.analysis.static_ import run_static_analysis
from repro.home import Home
from repro.minilang import parse
from repro.runtime import Interpreter, RunConfig
from repro.workloads.npb import build_lu_mz, lu_mz_source


@pytest.fixture(scope="module")
def lu_source():
    return lu_mz_source(inject=True)


@pytest.fixture(scope="module")
def lu_home_run():
    home = Home()
    program, static = home.prepare(build_lu_mz(inject=True))
    config = home.run_config(nprocs=2, num_threads=2, seed=0)
    return Interpreter(program, config).run()


def test_parse_lu_benchmark(benchmark, lu_source):
    program = benchmark(parse, lu_source)
    assert program.name == "lu_mz"


def test_static_analysis_lu(benchmark):
    program = build_lu_mz(inject=True)
    report = benchmark(run_static_analysis, program)
    assert report.instrumentation.n_instrumented > 0


def test_interpret_lu_base(benchmark):
    def run():
        return Interpreter(
            build_lu_mz(inject=False), RunConfig(nprocs=2, num_threads=2)
        ).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert not result.deadlocked


def test_hybrid_analysis_lu(benchmark, lu_home_run):
    reports = benchmark(analyze, lu_home_run.log)
    assert reports[0].pairs
