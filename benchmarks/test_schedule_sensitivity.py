"""Benchmark/study: detection stability across schedules.

Quantifies the paper's key qualitative comparison — "[Marmot] would not
find the errors which is a possible violation but not happen during
checking runtime" vs. HOME's schedule-independent lockset+HB detection
— by sweeping scheduler seeds on LU-MZ with the six injected
violations.
"""

from repro.experiments import schedule_study, study_table
from repro.violations import CONCURRENT_RECV
from repro.workloads.npb import build_lu_mz

SEEDS = tuple(range(8))


def test_detection_rates_across_schedules(benchmark):
    study = benchmark.pedantic(
        schedule_study,
        args=(build_lu_mz(inject=True),),
        kwargs={"seeds": SEEDS},
        rounds=1,
        iterations=1,
    )
    print()
    print(study_table(study).render())

    home, marmot = study["HOME"], study["MARMOT"]
    # HOME: every class, every seed.
    for vclass in home.classes():
        assert home.rate(vclass) == 1.0
    # Marmot: blind to the never-overlapping receive pair on all seeds.
    assert marmot.rate(CONCURRENT_RECV) == 0.0
    # Marmot sees strictly fewer classes overall.
    assert len(marmot.classes()) < len(home.classes())

    benchmark.extra_info["rates"] = {
        tool: {c: rates.rate(c) for c in rates.classes()}
        for tool, rates in study.items()
    }
