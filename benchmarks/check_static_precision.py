"""CI gate: the static phase's precision must never silently regress.

Runs ``repro static --json`` over every NPB workload variant (clean,
racy, clause-fixed, divergent/matched, interprocedural/funneled) and
compares the precision-bearing counts against the checked-in baseline
``benchmarks/baselines/static_precision.json``:

* ``unresolved`` — interprocedural array accesses delegated to the
  dynamic phase; growing this number means the summary layer stopped
  covering an access it used to analyze (FAIL if above baseline);
* ``race_candidates`` / ``collective_candidates`` / ``candidates`` —
  statically reported violations; dropping below baseline means a
  detection was lost (FAIL), growing above means new false candidates
  appeared on a pinned workload (FAIL on the *-fixed twins, warn
  otherwise).

Usage::

    python benchmarks/check_static_precision.py            # check
    python benchmarks/check_static_precision.py --write-baseline
"""

import json
import os
import subprocess
import sys
import tempfile

BASELINE = os.path.join(
    os.path.dirname(__file__), "baselines", "static_precision.json"
)


def _workload_sources():
    """name -> minilang source text, for every NPB workload variant."""
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )
    from repro.workloads.npb import (
        SPECS,
        build_source,
        divergent_npb_source,
        interproc_npb_source,
        racy_npb_source,
    )

    out = {}
    for name, spec in SPECS.items():
        out[name] = build_source(spec, inject=True)
        out[f"{name}-racy"] = racy_npb_source(spec)
        out[f"{name}-race-fixed"] = racy_npb_source(spec, fixed=True)
    out["div"] = divergent_npb_source()
    out["div-fixed"] = divergent_npb_source(fixed=True)
    out["ip"] = interproc_npb_source()
    out["ip-fixed"] = interproc_npb_source(fixed=True)
    return out


def _static_json(source):
    """Run ``repro static --json`` on *source* in a subprocess."""
    with tempfile.NamedTemporaryFile(
        "w", suffix=".mini", delete=False
    ) as fh:
        fh.write(source)
        path = fh.name
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(
        os.path.dirname(__file__), os.pardir, "src"
    )
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "static", path, "--json"],
            capture_output=True, text=True, env=env,
        )
    finally:
        os.unlink(path)
    if proc.returncode not in (0, 1):  # 1 = warnings present, still JSON
        raise RuntimeError(
            f"repro static failed ({proc.returncode}): {proc.stderr}"
        )
    return json.loads(proc.stdout)


def _metrics(payload):
    races = payload.get("races") or {}
    collectives = payload.get("collectives") or {}
    return {
        "unresolved": len(races.get("unresolved", [])),
        "race_candidates": len(races.get("candidates", [])),
        "collective_candidates": len(collectives.get("candidates", [])),
        "candidates": len(payload.get("candidates", [])),
        "monitored_vars": len(races.get("monitored_vars", [])),
    }


def collect():
    return {
        name: _metrics(_static_json(source))
        for name, source in sorted(_workload_sources().items())
    }


def main(argv):
    current = collect()
    if "--write-baseline" in argv:
        with open(BASELINE, "w") as fh:
            json.dump(current, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {BASELINE} ({len(current)} workloads)")
        return 0

    with open(BASELINE) as fh:
        baseline = json.load(fh)

    failures = []
    print(f"{'workload':<16} {'metric':<22} {'base':>5} {'now':>5}")
    for name, base_metrics in sorted(baseline.items()):
        cur_metrics = current.get(name)
        if cur_metrics is None:
            failures.append(f"{name}: workload missing from current run")
            continue
        for metric, base in sorted(base_metrics.items()):
            now = cur_metrics.get(metric, 0)
            marker = ""
            if metric == "unresolved" and now > base:
                marker = "  <-- REGRESSION (coverage lost)"
                failures.append(
                    f"{name}: unresolved grew {base} -> {now}"
                )
            elif metric != "unresolved" and now < base:
                marker = "  <-- REGRESSION (detection lost)"
                failures.append(
                    f"{name}: {metric} dropped {base} -> {now}"
                )
            elif metric != "unresolved" and now > base:
                if name.endswith("-fixed"):
                    marker = "  <-- REGRESSION (fixed twin not silent)"
                    failures.append(
                        f"{name}: {metric} grew {base} -> {now} "
                        "on a fixed twin"
                    )
                else:
                    marker = "  (new candidates; refresh baseline)"
            print(f"{name:<16} {metric:<22} {base:>5} {now:>5}{marker}")
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<16} (not in baseline; refresh with --write-baseline)")

    if failures:
        print("\nstatic precision regressed:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nstatic precision OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
