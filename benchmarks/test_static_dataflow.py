"""Static-phase dataflow benchmark.

Times the compile-time phase with the worklist dataflow analyses on
and off across the NPB-MZ suite and reports the candidate-reduction
ratio each prune category contributes.  The point being measured: the
dataflow pass must stay a small fraction of the static phase while
strictly shrinking the candidate set handed to the dynamic phase.
"""

import time

from repro.analysis.static_ import run_static_analysis
from repro.minilang import parse
from repro.workloads.npb import BENCHMARKS


def _rank_tagged(phases=3):
    """A hybrid exchange whose safety is only provable by dataflow:
    each barrier-separated phase posts two receives with distinct
    ``rank + K`` tags — envelope disjointness prunes the within-phase
    pair, MHP ordering prunes every cross-phase pair, mirroring the
    tag-disambiguation idiom of well-formed MPI_THREAD_MULTIPLE codes."""
    chunks = []
    for k in range(phases):
        chunks.append(f"""
        var lo{k} = rank + {2 * k};
        var hi{k} = rank + {2 * k + 1};
        mpi_recv(buf, 1, 0, lo{k}, MPI_COMM_WORLD);
        mpi_recv(buf, 1, 0, hi{k}, MPI_COMM_WORLD);
        omp barrier;""")
    body = "\n".join(chunks)
    return parse(f"""
program ranktags;
var buf[8];
func main() {{
    var p = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var size = mpi_comm_size(MPI_COMM_WORLD);
    omp parallel num_threads(2) {{
{body}
    }}
    mpi_finalize();
}}
""")


def _workloads():
    out = {name: build(inject=True) for name, build in BENCHMARKS.items()}
    out["ranktag"] = _rank_tagged()
    return out


def _static_sweep(dataflow):
    reports = {}
    for name, program in _workloads().items():
        start = time.perf_counter()
        report = run_static_analysis(program, dataflow=dataflow)
        elapsed = time.perf_counter() - start
        reports[name] = (report, elapsed)
    return reports


def test_dataflow_candidate_reduction(benchmark):
    with_df = benchmark.pedantic(_static_sweep, args=(True,), rounds=1, iterations=1)
    without = _static_sweep(False)

    print()
    print("static dataflow on NPB-MZ (injected) + rank-tagged exchange")
    print(f"  {'bench':<7} {'cands':>6} {'pruned-to':>9} {'ratio':>6} "
          f"{'iters':>6} {'ms':>7}")
    total_before = total_after = 0
    for name in with_df:
        base, _ = without[name]
        pruned, elapsed = with_df[name]
        n_before, n_after = len(base.candidates), len(pruned.candidates)
        total_before += n_before
        total_after += n_after
        facts = pruned.dataflow_facts
        ratio = n_after / n_before if n_before else 1.0
        print(f"  {name:<7} {n_before:>6} {n_after:>9} {ratio:>6.0%} "
              f"{facts.iterations:>6} {elapsed * 1e3:>7.1f}")
        # dataflow may only remove candidates, never add them
        assert n_after <= n_before
        assert facts.total_pruned == n_before - n_after
        # and the solver must actually have iterated every function
        assert facts.iterations > 0

    # the injected NPB candidates are genuine races (nothing to prune);
    # the rank-tagged exchange must shrink substantially
    ranktag, _ = with_df["ranktag"]
    ranktag_base, _ = without["ranktag"]
    assert len(ranktag.candidates) < len(ranktag_base.candidates)
    assert ranktag.dataflow_facts.pruned["envelope"] >= 1
    assert ranktag.dataflow_facts.pruned["mhp"] >= 1

    benchmark.extra_info["candidates_without_dataflow"] = total_before
    benchmark.extra_info["candidates_with_dataflow"] = total_after
    benchmark.extra_info["reduction_ratio"] = (
        1 - total_after / total_before if total_before else 0.0
    )


def test_dataflow_runtime_overhead():
    """The dataflow pass must not dominate the static phase."""
    slow = 0.0
    fast = 0.0
    for name, program in _workloads().items():
        start = time.perf_counter()
        run_static_analysis(program, dataflow=False)
        fast += time.perf_counter() - start
        start = time.perf_counter()
        run_static_analysis(program, dataflow=True)
        slow += time.perf_counter() - start
    print(f"\nstatic phase: {fast * 1e3:.1f} ms without dataflow, "
          f"{slow * 1e3:.1f} ms with ({slow / fast:.1f}x)")
    # generous bound: the worklist pass stays within an order of
    # magnitude of the rest of the static phase
    assert slow < fast * 10
