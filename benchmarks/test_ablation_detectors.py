"""Ablation: lockset + happens-before combination vs. each alone.

The paper: "the reason why dynamic analysis procedure combines the
algorithm of lockset analysis algorithm and happen-before algorithm is
to reduce false positive[s]".  This ablation runs HOME's detector in
three modes over a workload with a lock-serialized (safe) receive pair
and a genuinely racy receive pair:

* **hybrid** (paper) — flags only the racy pair;
* **no-lock-edges HB + no lockset** — flags both (false positive on the
  serialized pair);
* **lockset + HB** with critical locks invisible — also both.
"""

from repro.analysis.dynamic_.hybrid import DetectorConfig, analyze
from repro.analysis.static_ import instrument_program
from repro.minilang import parse
from repro.runtime import Interpreter, RunConfig
from repro.violations import CONCURRENT_RECV, match_violations

WORKLOAD = """
program ablate;
var buf[2];
func main() {
    var p = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var partner = 1 - rank;
    // safe pair: serialized by a critical section
    mpi_send(buf, 1, partner, 1, MPI_COMM_WORLD);
    mpi_send(buf, 1, partner, 1, MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        omp critical {
            mpi_recv(buf, 1, partner, 1, MPI_COMM_WORLD);
        }
    }
    // racy pair: no synchronization at all
    mpi_send(buf, 1, partner, 2, MPI_COMM_WORLD);
    mpi_send(buf, 1, partner, 2, MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        mpi_recv(buf, 1, partner, 2, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
"""


def _recv_findings(detector: DetectorConfig, seed=0):
    instrumented = instrument_program(parse(WORKLOAD))
    config = RunConfig(nprocs=2, num_threads=2, seed=seed,
                       thread_level_mode="permissive")
    result = Interpreter(instrumented.program, config).run()
    reports = analyze(result.log, detector)
    violations = match_violations(result.log, reports)
    return [v for v in violations if v.vclass == CONCURRENT_RECV]


def _sweep():
    hybrid = _recv_findings(DetectorConfig())
    naive_hb = _recv_findings(
        DetectorConfig(use_lockset=False, use_hb=True, lock_edges=False)
    )
    blind_locks = _recv_findings(
        DetectorConfig(ignored_locks=lambda name: name.startswith("critical:"))
    )
    return hybrid, naive_hb, blind_locks


def test_detector_combination_controls_false_positives(benchmark):
    hybrid, naive_hb, blind_locks = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print("ablation: dynamic-detector configuration (racy + serialized recv pairs)")
    print(f"  hybrid lockset+HB (paper): {len(hybrid)} finding(s)")
    print(f"  HB without lock knowledge: {len(naive_hb)} finding(s)")
    print(f"  criticals invisible:       {len(blind_locks)} finding(s)")

    # The paper's combination reports exactly the one real race (both
    # ranks execute the same racy callsite, so the finding deduplicates
    # to a single report covering both).
    assert len(hybrid) == 1
    # Degraded detectors also flag the critical-serialized pair.
    assert len(naive_hb) == 2
    assert len(blind_locks) == 2
    benchmark.extra_info["findings"] = {
        "hybrid": len(hybrid),
        "naive_hb": len(naive_hb),
        "blind_locks": len(blind_locks),
    }
