"""Differential property tests: HOME's verdict vs construction.

Programs are generated in two families:

* **safe** — per-thread traffic disambiguated by thread-id tags, or
  serialized by criticals/master: HOME must report nothing (no false
  positives, the paper's precision claim);
* **racy** — the same skeletons with a shared envelope: HOME must
  report the Concurrent-Recv violation (no false negatives).

The generator varies structural knobs (steps, compute weights, extra
safe traffic, region shapes) under hypothesis control.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.home import check_program
from repro.minilang import parse, validate
from repro.violations import CONCURRENT_RECV


def build_program(racy: bool, steps: int, weight: int, extra_collective: bool,
                  guard: str) -> str:
    """One ping-pong skeleton; ``racy`` controls envelope disambiguation."""
    if racy:
        tag = "7"
        guard_open, guard_close = "", ""
        if guard == "named-critical-but-different":
            # different lock names per thread: no mutual exclusion
            guard_open, guard_close = "", ""
    else:
        tag = "7 + omp_get_thread_num()"
        guard_open, guard_close = "", ""
        if guard == "critical":
            tag = "7"
            guard_open = "omp critical {"
            guard_close = "}"
        elif guard == "master":
            tag = "7"

    if not racy and guard == "master":
        region_body = f"""
        omp master {{
            mpi_recv(buf, 1, partner, 7, MPI_COMM_WORLD);
            mpi_recv(buf, 1, partner, 7, MPI_COMM_WORLD);
        }}"""
    else:
        region_body = f"""
        var t = omp_get_thread_num();
        compute({weight});
        {guard_open}
        mpi_recv(buf, 1, partner, {tag}, MPI_COMM_WORLD);
        {guard_close}"""

    if racy or guard in ("critical", "master"):
        sends = f"""
        mpi_send(buf, 1, partner, 7, MPI_COMM_WORLD);
        mpi_send(buf, 1, partner, 7, MPI_COMM_WORLD);"""
    else:
        sends = f"""
        mpi_send(buf, 1, partner, 7, MPI_COMM_WORLD);
        mpi_send(buf, 1, partner, 8, MPI_COMM_WORLD);"""

    collective = ""
    if extra_collective:
        collective = """
        var r = mpi_allreduce(step, MPI_SUM, MPI_COMM_WORLD);"""

    return f"""
program generated;
var buf[2];
func main() {{
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var size = mpi_comm_size(MPI_COMM_WORLD);
    var partner = 1 - rank;
    for (var step = 0; step < {steps}; step = step + 1) {{{sends}
        omp parallel num_threads(2) {{{region_body}
        }}{collective}
    }}
    mpi_finalize();
}}
"""


knobs = st.tuples(
    st.integers(min_value=1, max_value=3),         # steps
    st.integers(min_value=0, max_value=5),         # weight
    st.booleans(),                                 # extra collective
)


class TestDifferential:
    @given(knobs, st.sampled_from(["tags", "critical", "master"]))
    @settings(max_examples=15, deadline=None)
    def test_safe_constructions_report_nothing(self, knob, guard):
        steps, weight, extra = knob
        source = build_program(False, steps, weight, extra, guard)
        program = parse(source)
        validate(program)
        report = check_program(program, nprocs=2)
        assert len(report.violations) == 0, (
            f"false positive on safe program (guard={guard}):\n"
            f"{report.violations.summary()}\n{source}"
        )
        assert not report.deadlocked

    @given(knobs, st.integers(min_value=0, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_racy_constructions_always_detected(self, knob, seed):
        steps, weight, extra = knob
        source = build_program(True, steps, weight, extra, "none")
        program = parse(source)
        validate(program)
        report = check_program(program, nprocs=2, seed=seed)
        assert CONCURRENT_RECV in report.violations.classes(), (
            f"false negative on racy program (seed={seed}):\n{source}"
        )
