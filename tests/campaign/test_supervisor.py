"""Durable service path tests: supervised workers, drills, resume.

The invariant under test, end to end: however a durable campaign is
disturbed — a worker SIGKILLed mid-cell, the coordinator hard-killed
and resumed, a poison cell that murders every worker it touches — the
merged report and checkpoint are byte-identical to an undisturbed run
(with ``record_timing`` off), and the campaign always terminates.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.campaign import (
    CampaignConfig,
    STATUS_QUARANTINED,
    default_plan_matrix,
    run_campaign,
)
from repro.workloads.case_studies import case_study_2

RACY = """
program racy;
var a[1];
func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    omp parallel for for (var j = 0; j < 2; j = j + 1) {
        if (rank == 0) {
            mpi_send(a, 1, 1, 0, MPI_COMM_WORLD);
            mpi_recv(a, 1, 1, 0, MPI_COMM_WORLD);
        }
        if (rank == 1) {
            mpi_recv(a, 1, 0, 0, MPI_COMM_WORLD);
            mpi_send(a, 1, 0, 0, MPI_COMM_WORLD);
        }
    }
    mpi_finalize();
}
"""


def _config(tmp_path, tag, **overrides):
    settings = dict(
        seeds=range(3),
        plans=default_plan_matrix(2, ["none", "downgrade"]),
        record_timing=False,
        journal=str(tmp_path / f"{tag}.journal.jsonl"),
        checkpoint=str(tmp_path / f"{tag}.ckpt.json"),
        lease_seconds=120.0,
    )
    settings.update(overrides)
    return CampaignConfig(**settings)


def _blob(result):
    return json.dumps(result.as_dict(), sort_keys=True)


class TestDurableEqualsLegacy:
    def test_serial_durable_matches_legacy(self, tmp_path):
        # one program object: AST node ids are process-global, so
        # byte-comparing reports requires the same prepared program
        program = case_study_2()
        legacy = run_campaign(
            program,
            CampaignConfig(seeds=range(3),
                           plans=default_plan_matrix(2, ["none", "downgrade"]),
                           record_timing=False, jobs=1),
        )
        durable = run_campaign(
            program, _config(tmp_path, "serial", jobs=1)
        )
        assert _blob(legacy) == _blob(durable)

    def test_supervised_matches_legacy(self, tmp_path):
        program = case_study_2()
        legacy = run_campaign(
            program,
            CampaignConfig(seeds=range(3),
                           plans=default_plan_matrix(2, ["none", "downgrade"]),
                           record_timing=False, jobs=1),
        )
        supervised = run_campaign(
            program, _config(tmp_path, "sup", jobs=2)
        )
        assert _blob(legacy) == _blob(supervised)


class TestWorkerKillDrill:
    def test_killed_worker_is_reclaimed_and_report_unchanged(self, tmp_path):
        program = case_study_2()
        baseline = run_campaign(
            program, _config(tmp_path, "base", jobs=2)
        )
        lines = []
        drilled = run_campaign(
            program,
            _config(tmp_path, "drill", jobs=2, drill_kill_worker_after=1),
            progress=lines.append,
        )
        assert any("lease reclaimed" in line for line in lines), lines
        assert not drilled.interrupted
        assert _blob(baseline) == _blob(drilled)
        # externally-killed workers never push a healthy cell into
        # quarantine: the crash count stays under the cap
        assert drilled.status_counts().get(STATUS_QUARANTINED) is None


class TestPoisonCell:
    def test_poison_cell_quarantined_without_stalling(self, tmp_path):
        from repro.minilang import parse

        lines = []
        result = run_campaign(
            parse(RACY),
            _config(
                tmp_path, "poison", jobs=2,
                plans=default_plan_matrix(2, ["none", "killworker"]),
                seeds=range(2), poison_retries=1,
            ),
            progress=lines.append,
        )
        assert not result.interrupted
        assert len(result.outcomes) == 4
        statuses = {
            (o.seed, o.plan): o.status for o in result.outcomes
        }
        assert statuses[(0, "none")] == "ok"
        assert statuses[(1, "none")] == "ok"
        assert statuses[(0, "killworker")] == STATUS_QUARANTINED
        assert statuses[(1, "killworker")] == STATUS_QUARANTINED
        assert any("QUARANTINED" in line for line in lines)
        # the quarantine is loud in the summary, and healthy cells
        # still contributed their findings
        assert "QUARANTINED" in result.summary()
        assert result.report.classes()

    def test_killworker_plan_is_harmless_outside_workers(self):
        # in a serial (non-disposable) process the drill degrades to an
        # exception that per-cell isolation converts to an error
        from repro.minilang import parse

        result = run_campaign(
            parse(RACY),
            CampaignConfig(seeds=[0],
                           plans=default_plan_matrix(2, ["killworker"]),
                           record_timing=False, jobs=1),
        )
        (outcome,) = result.outcomes
        assert outcome.status == "error"
        assert "worker-kill drill" in outcome.error


class TestInterruption:
    def test_stop_event_yields_partial_flagged_result(self, tmp_path):
        import threading

        stop = threading.Event()
        seen = []

        def on_cell(outcomes):
            seen.append(len(outcomes))
            if len(outcomes) >= 2:
                stop.set()

        program = case_study_2()
        result = run_campaign(
            program, _config(tmp_path, "stop", jobs=1),
            stop=stop, on_cell=on_cell,
        )
        assert result.interrupted
        assert 2 <= len(result.outcomes) < 6
        assert "INTERRUPTED" in result.summary()
        assert result.as_dict()["interrupted"] is True
        # and the journal resumes it to exactly the uninterrupted state
        resumed = run_campaign(
            program, _config(tmp_path, "stop", jobs=1, resume=True)
        )
        clean = run_campaign(
            program, _config(tmp_path, "clean", jobs=1)
        )
        assert _blob(resumed) == _blob(clean)


class TestCoordinatorKillDrill:
    """The acceptance drill: kill -9 the coordinator, resume, compare."""

    @pytest.fixture()
    def racy_file(self, tmp_path):
        path = tmp_path / "racy.mini"
        path.write_text(RACY)
        return str(path)

    def _cli(self, args, timeout=300):
        import repro

        src_dir = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.cli"] + args,
            env=env, capture_output=True, text=True, timeout=timeout,
        )

    def test_hard_killed_coordinator_resumes_byte_identical(
        self, racy_file, tmp_path
    ):
        base = [
            "campaign", racy_file, "--seeds", "2", "--plans", "none,downgrade",
            "--jobs", "2", "--no-timing",
        ]
        clean = self._cli(base + [
            "--journal", str(tmp_path / "c.journal"),
            "--checkpoint", str(tmp_path / "c.ckpt"),
            "--json", str(tmp_path / "c.json"),
        ])
        assert clean.returncode == 0, clean.stderr
        drilled = self._cli(base + [
            "--journal", str(tmp_path / "d.journal"),
            "--checkpoint", str(tmp_path / "d.ckpt"),
            "--json", str(tmp_path / "d.json"),
            "--drill-abort-after", "1",
        ])
        assert drilled.returncode == 137, (drilled.stdout, drilled.stderr)
        assert not (tmp_path / "d.json").exists()
        resumed = self._cli(base + [
            "--journal", str(tmp_path / "d.journal"),
            "--checkpoint", str(tmp_path / "d.ckpt"),
            "--json", str(tmp_path / "d.json"),
            "--resume",
        ])
        assert resumed.returncode == 0, resumed.stderr
        assert (tmp_path / "c.json").read_bytes() \
            == (tmp_path / "d.json").read_bytes()
        assert (tmp_path / "c.ckpt").read_bytes() \
            == (tmp_path / "d.ckpt").read_bytes()
