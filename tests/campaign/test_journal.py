"""Campaign journal tests: CRC envelopes, replay, shared tail salvage.

The journal and the event-trace loader deliberately share one
tail-truncation policy (:mod:`repro.jsonlines`): trust the valid
prefix, drop the first undecodable line and everything after it.  The
regression tests here cut files mid-record — the exact damage a
``kill -9`` during an append leaves behind.
"""

import json

import pytest

from repro.campaign import (
    JOURNAL_FORMAT,
    Journal,
    RunOutcome,
    replay_journal,
)
from repro.campaign.journal import decode_journal_line, encode_journal_line
from repro.errors import AnalysisError
from repro.jsonlines import read_json_lines


class TestJournalLine:
    def test_round_trip(self):
        rec = {"type": "done", "cell": "0/none", "outcome": {"seed": 0}}
        assert decode_journal_line(encode_journal_line(rec)) == rec

    def test_round_trip_preserves_key_order(self):
        # resumed outcomes must re-serialize byte-identically, so the
        # stored record keeps insertion order (only the CRC is canonical)
        rec = {"type": "done", "zeta": 1, "alpha": 2}
        assert list(decode_journal_line(encode_journal_line(rec))) == [
            "type", "zeta", "alpha",
        ]

    def test_bit_flip_fails_crc(self):
        line = encode_journal_line({"type": "lease", "cell": "0/none"})
        damaged = line.replace("0/none", "1/none")
        with pytest.raises(ValueError, match="CRC mismatch"):
            decode_journal_line(damaged)

    def test_missing_envelope_rejected(self):
        with pytest.raises(ValueError, match="envelope"):
            decode_journal_line(json.dumps({"type": "lease"}))

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            decode_journal_line('{"crc": 1, "rec"')


class TestJournalFile:
    def write_sample(self, path):
        with Journal(str(path), {"program": "p"}, fresh=True) as journal:
            journal.append("lease", cell="0/none", worker="w0", attempt=1)
            journal.append(
                "done", cell="0/none",
                outcome=RunOutcome(seed=0, plan="none").as_dict(),
            )
            journal.append("lease", cell="1/none", worker="w0", attempt=1)

    def test_replay_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self.write_sample(path)
        replay = replay_journal(str(path))
        assert replay.meta == {"program": "p"}
        assert [r["type"] for r in replay.records] == ["lease", "done", "lease"]
        assert not replay.truncated

    def test_append_reopens_existing_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self.write_sample(path)
        with Journal(str(path), {"program": "p"}) as journal:
            journal.append("release", cell="1/none")
        replay = replay_journal(str(path))
        assert [r["type"] for r in replay.records][-1] == "release"
        # no second header was written
        assert sum(
            1 for line in path.read_text().splitlines()
            if '"header"' in line
        ) == 1

    def test_cut_mid_record_salvages_prefix(self, tmp_path):
        # regression: a journal cut mid-record (kill -9 during append)
        # must replay its valid prefix and report the dropped tail
        path = tmp_path / "j.jsonl"
        self.write_sample(path)
        lines = path.read_text().splitlines()
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        path.write_text("\n".join(lines) + "\n")
        replay = replay_journal(str(path))
        assert [r["type"] for r in replay.records] == ["lease", "done"]
        assert replay.truncated
        assert replay.dropped == 1

    def test_damage_drops_suffix_too(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self.write_sample(path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-5]  # damage the first post-header record
        path.write_text("\n".join(lines) + "\n")
        replay = replay_journal(str(path))
        assert replay.records == []
        assert replay.dropped == 3

    def test_unreadable_header_is_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"torn')
        with pytest.raises(AnalysisError, match="no readable header"):
            replay_journal(str(path))

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            encode_journal_line({"type": "header", "format": "other"}) + "\n"
        )
        with pytest.raises(AnalysisError, match="not a campaign journal"):
            replay_journal(str(path))

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            encode_journal_line(
                {"type": "header", "format": JOURNAL_FORMAT,
                 "schema_version": 99}
            ) + "\n"
        )
        with pytest.raises(AnalysisError, match="schema_version 99"):
            replay_journal(str(path))


class TestSharedTailPolicy:
    """The journal and load_log really use one salvage helper."""

    def test_same_helper_same_arithmetic(self, tmp_path):
        # five decodable lines, one damaged, two after it: both callers
        # must keep 5 and drop 3
        lines = [json.dumps({"i": i}) for i in range(5)]
        lines += ['{"cut', json.dumps({"i": 9}), "trailing garbage"]
        path = tmp_path / "f.jsonl"
        path.write_text("\n".join(lines) + "\n")
        with open(path) as fh:
            records, truncation = read_json_lines(fh, json.loads)
        assert [r["i"] for r in records] == [0, 1, 2, 3, 4]
        assert truncation.dropped == 3
        assert truncation.lineno == 6

    def test_blank_lines_skipped_not_counted(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_text('{"i": 0}\n\n{"i": 1}\n')
        with open(path) as fh:
            records, truncation = read_json_lines(fh, json.loads)
        assert len(records) == 2
        assert truncation is None
