"""Campaign checkpoint tests: atomicity, validation, round-trip."""

import json

import pytest

from repro.campaign import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_SCHEMA_VERSION,
    CORRUPT_SUFFIX,
    RunOutcome,
    load_checkpoint,
    save_checkpoint,
    violation_from_dict,
    violation_to_dict,
)
from repro.errors import AnalysisError
from repro.violations.spec import Violation


class TestViolationSerialization:
    def test_round_trip(self):
        violation = Violation(
            vclass="ProbeViolation", proc=1, message="m",
            callsites=(3, 7), locs=("4:2",), threads=(1, 2), ops=("mpi_probe",),
        )
        again, procs = violation_from_dict(violation_to_dict(violation, [0, 1]))
        assert again == violation
        assert procs == [0, 1]

    def test_missing_procs_defaults_to_owner(self):
        violation = Violation(vclass="X", proc=4, message="m")
        data = violation_to_dict(violation, [])
        data.pop("procs")
        _, procs = violation_from_dict(data)
        assert procs == [4]


class TestRunOutcome:
    def test_round_trip(self):
        outcome = RunOutcome(
            seed=3, plan="crash", attempt=1, sim_seed=100006,
            status="budget", deadlocked=True, failure="budget blown",
            events=42, faults_fired=2, crashed_ranks=[1],
            violations=[violation_to_dict(
                Violation(vclass="X", proc=0, message="m", callsites=(1,)), [0]
            )],
        )
        again = RunOutcome.from_dict(outcome.as_dict())
        assert again == outcome

    def test_report_rebuilds_and_dedups(self):
        data = violation_to_dict(
            Violation(vclass="X", proc=0, message="m", callsites=(1,)), [0, 1]
        )
        outcome = RunOutcome(seed=0, plan="none", violations=[data, data])
        report = outcome.report()
        assert len(report) == 1
        key = report.violations[0].dedup_key()
        assert sorted(report.procs_by_finding[key]) == [0, 1]

    def test_analyzable_statuses(self):
        assert RunOutcome(seed=0, plan="p", status="ok").analyzable
        assert RunOutcome(seed=0, plan="p", status="budget").analyzable
        assert not RunOutcome(seed=0, plan="p", status="error").analyzable
        assert not RunOutcome(seed=0, plan="p", status="forced-fail").analyzable
        assert not RunOutcome(
            seed=0, plan="p", status="ok", analysis_error="boom"
        ).analyzable


class TestCheckpointFile:
    def outcomes(self):
        return [RunOutcome(seed=s, plan="none", events=s * 10) for s in range(3)]

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "c.json")
        save_checkpoint(path, {"program": "p"}, self.outcomes())
        state = load_checkpoint(path)
        assert state["meta"] == {"program": "p"}
        assert [o.seed for o in state["outcomes"]] == [0, 1, 2]

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = str(tmp_path / "c.json")
        save_checkpoint(path, {}, self.outcomes())
        save_checkpoint(path, {"v": 2}, self.outcomes()[:1])
        state = load_checkpoint(path)
        assert state["meta"] == {"v": 2}
        assert len(state["outcomes"]) == 1
        # no temp files left behind
        leftovers = [p for p in tmp_path.iterdir() if p.name != "c.json"]
        assert leftovers == []

    def test_corrupt_json_rejected(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text('{"format": "repro-campaign", "version')
        with pytest.raises(AnalysisError, match="corrupt campaign checkpoint"):
            load_checkpoint(str(path))

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"format": "other", "version": 1}))
        with pytest.raises(AnalysisError, match="not a campaign checkpoint"):
            load_checkpoint(str(path))

    def test_wrong_schema_version_rejected(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(
            json.dumps({"format": CHECKPOINT_FORMAT, "schema_version": 99})
        )
        with pytest.raises(AnalysisError, match="schema_version 99"):
            load_checkpoint(str(path))

    def test_pre_schema_version_checkpoint_rejected(self, tmp_path):
        # checkpoints written before the schema_version field carry only
        # the old "version" key; a resume must restart cold, not misread
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"format": CHECKPOINT_FORMAT, "version": 1}))
        with pytest.raises(AnalysisError, match="schema_version"):
            load_checkpoint(str(path))

    def test_saved_payload_carries_schema_version(self, tmp_path):
        path = str(tmp_path / "c.json")
        save_checkpoint(path, {}, self.outcomes())
        payload = json.loads((tmp_path / "c.json").read_text())
        assert payload["schema_version"] == CHECKPOINT_SCHEMA_VERSION

    def test_missing_file_is_filenotfound(self, tmp_path):
        with pytest.raises(AnalysisError, match="cannot read"):
            load_checkpoint(str(tmp_path / "absent.json"))


class TestCheckpointDurability:
    """v3 hardening: payload CRC, fsync'd writes, corrupt-file quarantine."""

    def outcomes(self):
        return [RunOutcome(seed=s, plan="none", events=s * 10) for s in range(3)]

    def test_payload_carries_matching_crc(self, tmp_path):
        path = str(tmp_path / "c.json")
        save_checkpoint(path, {"program": "p"}, self.outcomes())
        payload = json.loads((tmp_path / "c.json").read_text())
        assert isinstance(payload["crc"], int)
        state = load_checkpoint(path)
        assert len(state["outcomes"]) == 3

    def test_bit_flip_fails_crc(self, tmp_path):
        path = tmp_path / "c.json"
        save_checkpoint(str(path), {"program": "p"}, self.outcomes())
        text = path.read_text()
        # flip one character inside the outcomes payload
        path.write_text(text.replace('"events": 10', '"events": 11', 1))
        with pytest.raises(AnalysisError, match="CRC mismatch"):
            load_checkpoint(str(path))

    def test_missing_crc_rejected(self, tmp_path):
        path = tmp_path / "c.json"
        payload = {
            "format": CHECKPOINT_FORMAT,
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "meta": {},
            "outcomes": [],
        }
        path.write_text(json.dumps(payload))
        with pytest.raises(AnalysisError, match="CRC mismatch"):
            load_checkpoint(str(path))

    def test_quarantine_moves_corrupt_file_aside(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text('{"torn write')
        with pytest.raises(AnalysisError, match="quarantined to"):
            load_checkpoint(str(path), quarantine=True)
        assert not path.exists()
        moved = tmp_path / ("c.json" + CORRUPT_SUFFIX)
        assert moved.exists()
        assert moved.read_text() == '{"torn write'
        # the path is now free: a fresh save works and loads
        save_checkpoint(str(path), {}, self.outcomes())
        assert len(load_checkpoint(str(path))["outcomes"]) == 3

    def test_quarantine_on_crc_failure(self, tmp_path):
        path = tmp_path / "c.json"
        save_checkpoint(str(path), {}, self.outcomes())
        text = path.read_text()
        path.write_text(text.replace('"events": 20', '"events": 21', 1))
        with pytest.raises(AnalysisError, match="CRC mismatch"):
            load_checkpoint(str(path), quarantine=True)
        assert (tmp_path / ("c.json" + CORRUPT_SUFFIX)).exists()

    def test_wrong_format_not_quarantined(self, tmp_path):
        # structurally valid files of another format are somebody's
        # good data: never move them aside
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"format": "other"}))
        with pytest.raises(AnalysisError, match="not a campaign checkpoint"):
            load_checkpoint(str(path), quarantine=True)
        assert path.exists()

    def test_runner_resumes_cold_after_quarantine(self, tmp_path):
        # integration: CampaignRunner._load_resume must warn and cold
        # start on a corrupt checkpoint, not crash
        from repro.campaign import CampaignConfig, run_campaign
        from repro.workloads.case_studies import safe_funneled

        path = tmp_path / "c.json"
        path.write_text('{"torn write')
        config = CampaignConfig(
            seeds=[0], plans={"none": None}, checkpoint=str(path),
            resume=True, record_timing=False,
        )
        result = run_campaign(safe_funneled(), config)
        assert len(result.outcomes) == 1
        assert (tmp_path / ("c.json" + CORRUPT_SUFFIX)).exists()
