"""Parallel campaign execution: determinism, resume, crash isolation.

The contract under test: the worker count is *only* a wall-clock knob.
For any ``jobs`` value the merged report, the checkpoint file and the
exit status must be identical to a serial run (with ``record_timing``
off, bit-exact), and a checkpoint written by a parallel run must resume
cleanly under any other worker count.
"""

import json
import os

import pytest

from repro.campaign import (
    CampaignConfig,
    CellTask,
    default_plan_matrix,
    load_checkpoint,
    resolve_jobs,
    run_campaign,
    save_checkpoint,
)
from repro.cli import main
from repro.home import Home
from repro.workloads.case_studies import case_study_2

RACY = """
program racy;
var a[1];
func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    omp parallel for for (var j = 0; j < 2; j = j + 1) {
        if (rank == 0) {
            mpi_send(a, 1, 1, 0, MPI_COMM_WORLD);
            mpi_recv(a, 1, 1, 0, MPI_COMM_WORLD);
        }
        if (rank == 1) {
            mpi_recv(a, 1, 0, 0, MPI_COMM_WORLD);
            mpi_send(a, 1, 0, 0, MPI_COMM_WORLD);
        }
    }
    mpi_finalize();
}
"""


def _config(jobs, checkpoint=None, resume=False):
    return CampaignConfig(
        seeds=range(3),
        plans=default_plan_matrix(2, ["none", "downgrade"]),
        jobs=jobs,
        record_timing=False,
        checkpoint=checkpoint,
        resume=resume,
    )


class TestResolveJobs:
    def test_auto_uses_cores_capped_by_cells(self):
        cores = os.cpu_count() or 1
        assert resolve_jobs("auto", 100) == cores
        assert resolve_jobs(None, 100) == cores
        assert resolve_jobs("auto", 1) == 1

    def test_explicit_count_capped_by_cells(self):
        assert resolve_jobs(4, 2) == 2
        assert resolve_jobs(2, 50) == 2
        assert resolve_jobs(1, 50) == 1

    def test_zero_cells_still_one_worker(self):
        assert resolve_jobs(8, 0) == 1

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1, 4)
        with pytest.raises(ValueError):
            resolve_jobs("three", 4)


class TestParallelDeterminism:
    def test_merged_report_and_checkpoint_bit_identical(self, tmp_path):
        """jobs=4 and jobs=1 produce byte-for-byte identical artifacts."""
        # one program object: AST node ids are assigned by a
        # process-global counter, so rebuilding would shift callsites
        program = case_study_2()
        paths = {}
        results = {}
        for jobs in (1, 4):
            path = str(tmp_path / f"ck-{jobs}.json")
            paths[jobs] = path
            results[jobs] = run_campaign(program, _config(jobs, path))
        with open(paths[1], "rb") as fh:
            serial_bytes = fh.read()
        with open(paths[4], "rb") as fh:
            parallel_bytes = fh.read()
        assert serial_bytes == parallel_bytes
        assert (
            json.dumps(results[1].as_dict(), sort_keys=True)
            == json.dumps(results[4].as_dict(), sort_keys=True)
        )
        assert results[1].degraded == results[4].degraded is False
        assert results[4].report.classes() == results[1].report.classes()

    def test_outcomes_in_canonical_matrix_order(self):
        result = run_campaign(case_study_2(), _config(4))
        keys = [(o.plan, o.seed) for o in result.outcomes]
        expected = [
            (plan, seed)
            for plan in ("none", "downgrade")
            for seed in range(3)
        ]
        assert keys == expected

    def test_cell_task_is_picklable(self):
        import pickle

        plans = default_plan_matrix(2, ["crash"])
        task = CellTask(index=3, seed=7, plan_name="crash", plan=plans["crash"])
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task


class TestParallelResume:
    def test_resume_half_finished_parallel_checkpoint(self, tmp_path):
        """A truncated parallel checkpoint resumes to the full result
        under both serial and parallel execution."""
        program = case_study_2()
        full_path = str(tmp_path / "full.json")
        run_campaign(program, _config(4, full_path))
        with open(full_path, "rb") as fh:
            full_bytes = fh.read()
        state = load_checkpoint(full_path)
        assert len(state["outcomes"]) == 6

        for jobs in (1, 4):
            half_path = str(tmp_path / f"half-{jobs}.json")
            # keep an arbitrary (non-prefix) half, as an interrupted
            # out-of-order parallel run would have banked
            save_checkpoint(half_path, state["meta"], state["outcomes"][::2])
            lines = []
            result = run_campaign(
                program,
                _config(jobs, half_path, resume=True),
                progress=lines.append,
            )
            assert sum("(resumed)" in line for line in lines) == 3
            assert len(result.outcomes) == 6
            with open(half_path, "rb") as fh:
                assert fh.read() == full_bytes

    def test_all_resumed_rewrites_canonical_checkpoint(self, tmp_path):
        program = case_study_2()
        path = str(tmp_path / "ck.json")
        first = run_campaign(program, _config(4, path))
        second = run_campaign(program, _config(1, path, resume=True))
        assert [o.as_dict() for o in second.outcomes] == [
            o.as_dict() for o in first.outcomes
        ]


class WorkerKillingTool(Home):
    """Dies instantly in any worker process; healthy in the parent."""

    def __init__(self, parent_pid):
        super().__init__()
        self.parent_pid = parent_pid

    def run_config(self, *args, **kwargs):
        if os.getpid() != self.parent_pid:
            os._exit(13)
        return super().run_config(*args, **kwargs)


class TestCrashIsolation:
    def test_broken_pool_falls_back_to_inprocess(self):
        """Killing every worker process outright still completes the
        campaign with the same findings as a serial run."""
        lines = []
        result = run_campaign(
            case_study_2(),
            _config(4),
            tool=WorkerKillingTool(os.getpid()),
            progress=lines.append,
        )
        assert len(result.outcomes) == 6
        assert all(o.analyzable for o in result.outcomes)
        assert any("worker pool failed" in line for line in lines)
        serial = run_campaign(case_study_2(), _config(1))
        assert result.report.classes() == serial.report.classes()


class TestCliJobs:
    @pytest.fixture()
    def racy_file(self, tmp_path):
        path = tmp_path / "racy.mini"
        path.write_text(RACY)
        return str(path)

    def test_jobs_flag_byte_identical_across_worker_counts(self, racy_file, tmp_path):
        """Real CLI invocations (fresh processes, so AST node ids are
        reproducible) emit bit-identical reports for any --jobs."""
        import subprocess
        import sys

        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        blobs = {}
        for jobs in ("1", "4"):
            report = tmp_path / f"r-{jobs}.json"
            proc = subprocess.run(
                [sys.executable, "-m", "repro.cli",
                 "campaign", racy_file, "--seeds", "2", "--plans", "none,crash",
                 "--jobs", jobs, "--no-timing", "--json", str(report)],
                env=env, capture_output=True, text=True, timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            blobs[jobs] = report.read_bytes()
        assert blobs["1"] == blobs["4"]

    def test_bad_jobs_value_rejected(self, racy_file, capsys):
        code = main(["campaign", racy_file, "--jobs", "zero"])
        assert code == 2
        assert "--jobs" in capsys.readouterr().err
