"""Campaign service tests: spool protocol, partial reports, resume.

The service is driven the way a client would drive it — JSON files
renamed into ``incoming/`` — and always in ``once`` mode so the tests
never block on the watch loop.
"""

import json
import os
import threading

import pytest

from repro.campaign import CampaignService, ServeConfig, SPOOL_DIRS, serve

RACY = """
program racy;
var a[1];
func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    omp parallel for for (var j = 0; j < 2; j = j + 1) {
        if (rank == 0) {
            mpi_send(a, 1, 1, 0, MPI_COMM_WORLD);
            mpi_recv(a, 1, 1, 0, MPI_COMM_WORLD);
        }
        if (rank == 1) {
            mpi_recv(a, 1, 0, 0, MPI_COMM_WORLD);
            mpi_send(a, 1, 0, 0, MPI_COMM_WORLD);
        }
    }
    mpi_finalize();
}
"""


def submit(spool, name, spec):
    """Write-then-rename, the atomic submission protocol."""
    tmp = os.path.join(spool, f".{name}.tmp")
    with open(tmp, "w") as fh:
        json.dump(spec, fh)
    os.replace(tmp, os.path.join(spool, "incoming", f"{name}.json"))


def drain(spool, **overrides):
    config = ServeConfig(spool=str(spool), once=True, **overrides)
    service = CampaignService(config)
    interrupted = service.run()
    return service, interrupted


@pytest.fixture()
def spool(tmp_path):
    return tmp_path / "spool"


class TestSpoolLifecycle:
    def test_spool_directories_created(self, spool):
        CampaignService(ServeConfig(spool=str(spool)))
        for sub in SPOOL_DIRS:
            assert (spool / sub).is_dir()

    def test_good_submission_retired_to_done(self, spool):
        CampaignService(ServeConfig(spool=str(spool)))  # mkdir
        submit(spool, "racy", {"program": RACY, "seeds": [0, 1],
                               "plans": ["none"]})
        service, interrupted = drain(spool)
        assert not interrupted
        assert service.processed == 1 and service.failed == 0
        assert not os.listdir(spool / "incoming")
        assert not os.listdir(spool / "active")
        # submission and both durability artifacts retired together
        assert sorted(os.listdir(spool / "done")) == [
            "racy.checkpoint.json", "racy.journal.jsonl", "racy.json",
        ]
        report = json.load(open(spool / "reports" / "racy.report.json"))
        assert report["partial"] is False
        assert report["resolved_cells"] == report["planned_cells"] == 2
        assert report["classes"], "racy program produced no findings"

    def test_bad_submission_rejected_not_fatal(self, spool):
        CampaignService(ServeConfig(spool=str(spool)))
        submit(spool, "broken", {"program": "func main( {"})
        submit(spool, "notaspec", ["not", "an", "object"])
        submit(spool, "ok", {"program": RACY, "seeds": [0],
                             "plans": ["none"]})
        service, _ = drain(spool)
        # the two bad submissions were quarantined, the good one ran
        assert service.failed == 2 and service.processed == 1
        failed = sorted(os.listdir(spool / "failed"))
        assert "broken.error.txt" in failed and "broken.json" in failed
        assert "notaspec.error.txt" in failed
        why = (spool / "failed" / "notaspec.error.txt").read_text()
        assert "program" in why
        assert (spool / "reports" / "ok.report.json").exists()

    def test_non_json_files_ignored(self, spool):
        CampaignService(ServeConfig(spool=str(spool)))
        (spool / "incoming" / "README.txt").write_text("not a submission")
        service, _ = drain(spool)
        assert service.processed == 0 and service.failed == 0
        assert (spool / "incoming" / "README.txt").exists()


class TestPartialReportsAndResume:
    def test_interrupted_submission_stays_active_then_resumes(self, spool):
        CampaignService(ServeConfig(spool=str(spool)))
        submit(spool, "racy", {"program": RACY, "seeds": [0, 1, 2],
                               "plans": ["none", "downgrade"]})
        # first server: stopped after the second cell, mid-submission
        stop = threading.Event()
        count = [0]

        def watch(message):
            # cell completions announce as "[racy] [n/total] seed=..."
            if "/6]" in message:
                count[0] += 1
                if count[0] >= 2:
                    stop.set()

        first = CampaignService(
            ServeConfig(spool=str(spool), once=True), progress=watch,
            stop=stop,
        )
        assert first.run() is True  # interrupted
        assert first.processed == 0
        # partial report already streaming, submission still active
        report = json.load(open(spool / "reports" / "racy.report.json"))
        assert report["partial"] is True
        assert 2 <= report["resolved_cells"] < 6
        assert "racy.json" in os.listdir(spool / "active")
        assert "racy.journal.jsonl" in os.listdir(spool / "active")
        # second server on the same spool finishes the job
        service, interrupted = drain(spool)
        assert not interrupted and service.processed == 1
        report = json.load(open(spool / "reports" / "racy.report.json"))
        assert report["partial"] is False
        assert report["resolved_cells"] == 6

    def test_resumed_report_matches_uninterrupted_run(self, spool):
        CampaignService(ServeConfig(spool=str(spool)))
        spec = {"program": RACY, "seeds": [0, 1], "plans": ["none"]}
        submit(spool, "clean", spec)
        drain(spool)
        # same spec, interrupted after one cell then resumed
        submit(spool, "bumpy", spec)
        stop = threading.Event()

        def watch(message):
            if "/2]" in message:
                stop.set()

        CampaignService(ServeConfig(spool=str(spool), once=True),
                        progress=watch, stop=stop).run()
        drain(spool)
        clean = json.load(open(spool / "reports" / "clean.report.json"))
        bumpy = json.load(open(spool / "reports" / "bumpy.report.json"))
        for key in ("classes", "violations", "outcomes", "degraded"):
            assert clean[key] == bumpy[key], key

    def test_serve_helper_runs_once(self, spool):
        CampaignService(ServeConfig(spool=str(spool)))
        submit(spool, "racy", {"program": RACY, "seeds": [0],
                               "plans": ["none"]})
        assert serve(ServeConfig(spool=str(spool), once=True)) is False
        assert (spool / "done" / "racy.json").exists()
