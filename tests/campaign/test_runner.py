"""Campaign runner tests: isolation, merging, resume, degradation."""

import pytest

from repro.campaign import (
    STATUS_BUDGET,
    STATUS_ERROR,
    STATUS_FORCED,
    STATUS_OK,
    CampaignConfig,
    CampaignRunner,
    default_plan_matrix,
    load_checkpoint,
    run_campaign,
)
from repro.faults import RANK_CRASH, FaultPlan, FaultSpec, builtin_plans
from repro.home import Home
from repro.minilang import parse, validate
from repro.violations.matcher import ViolationReport
from repro.violations.spec import Violation
from repro.workloads.case_studies import case_study_2

SPIN = """
program spin;
func main() {
    mpi_init();
    var i = 0;
    while (i < 100000) { i = i + 1; }
    mpi_finalize();
}
"""


def spin_program():
    program = parse(SPIN)
    validate(program)
    return program


class TestReportMerge:
    def make(self, vclass, proc):
        report = ViolationReport()
        report.add(Violation(vclass=vclass, proc=proc, message="m", callsites=(1,)))
        return report

    def test_merge_dedups_and_unions_ranks(self):
        a = self.make("X", 0)
        b = self.make("X", 1)
        a.merge(b)
        assert len(a) == 1
        key = a.violations[0].dedup_key()
        assert sorted(a.procs_by_finding[key]) == [0, 1]

    def test_merge_keeps_distinct_findings(self):
        a = self.make("X", 0)
        a.merge(self.make("Y", 0))
        assert sorted(a.classes()) == ["X", "Y"]


class TestHealthyCampaign:
    def test_matrix_runs_and_merges(self):
        config = CampaignConfig(
            seeds=range(2),
            plans=default_plan_matrix(2, ["none", "crash"]),
        )
        result = run_campaign(case_study_2(), config)
        assert len(result.outcomes) == 4
        assert result.status_counts() == {STATUS_OK: 4}
        assert not result.degraded
        # the fault-free single run's findings are all present
        single = Home().check(case_study_2(), nprocs=2, num_threads=2, seed=0)
        assert set(single.violations.classes()) <= set(result.report.classes())

    def test_crash_runs_are_isolated_and_analyzable(self):
        config = CampaignConfig(
            seeds=[0], plans={"crash": builtin_plans(2)["crash"]},
        )
        result = run_campaign(case_study_2(), config)
        (outcome,) = result.outcomes
        assert outcome.status == STATUS_OK
        assert outcome.deadlocked
        assert outcome.analyzable
        assert outcome.crashed_ranks == [1]

    def test_summary_mentions_runs_and_findings(self):
        result = run_campaign(
            case_study_2(), CampaignConfig(seeds=[0], plans=None)
        )
        text = result.summary()
        assert "1 run(s)" in text
        assert "ConcurrentRecvViolation" in text


class TestBudgets:
    def test_budget_exhaustion_salvages_partial_trace(self):
        config = CampaignConfig(seeds=[0], budget_steps=2000, retries=1)
        result = run_campaign(spin_program(), config)
        (outcome,) = result.outcomes
        assert outcome.status == STATUS_BUDGET
        assert "infinite loop" in outcome.failure
        assert outcome.events > 0
        assert outcome.analyzable
        # retry ran at the reduced budget and the longest trace was kept
        assert outcome.attempt in (0, 1)

    def test_campaign_survives_budget_cells_alongside_good_ones(self):
        config = CampaignConfig(seeds=[0], budget_steps=2000)
        good = run_campaign(case_study_2(), config)
        assert good.outcomes[0].status in (STATUS_OK, STATUS_BUDGET)


class TestErrorIsolation:
    class ExplodingTool(Home):
        def analyze(self, result, static):
            raise RuntimeError("analyzer exploded")

    class BrokenConfigTool(Home):
        def run_config(self, *args, **kwargs):
            raise RuntimeError("bad config")

    def test_analysis_crash_is_recorded_not_raised(self):
        result = run_campaign(
            case_study_2(), CampaignConfig(seeds=[0]),
            tool=self.ExplodingTool(),
        )
        (outcome,) = result.outcomes
        assert outcome.status == STATUS_OK
        assert not outcome.analyzable
        assert "analyzer exploded" in outcome.analysis_error
        assert result.degraded

    def test_run_config_crash_is_recorded_not_raised(self):
        result = run_campaign(
            case_study_2(), CampaignConfig(seeds=[0], retries=0),
            tool=self.BrokenConfigTool(),
        )
        (outcome,) = result.outcomes
        assert outcome.status == STATUS_ERROR
        assert "bad config" in outcome.error


class TestDegradation:
    def test_force_fail_yields_flagged_static_only_report(self):
        config = CampaignConfig(seeds=range(2), force_fail=True)
        result = run_campaign(case_study_2(), config)
        assert result.degraded
        assert all(o.status == STATUS_FORCED for o in result.outcomes)
        assert len(result.report) > 0
        assert all("STATIC-ONLY" in v.message for v in result.report)
        assert "DEGRADED REPORT" in result.summary()

    def test_static_only_findings_carry_no_rank(self):
        result = run_campaign(
            case_study_2(), CampaignConfig(seeds=[0], force_fail=True)
        )
        assert all(v.proc == -1 for v in result.report)


class TestCheckpointResume:
    def config(self, path, resume=False):
        return CampaignConfig(
            seeds=range(2),
            plans=default_plan_matrix(2, ["none", "downgrade"]),
            checkpoint=path,
            resume=resume,
        )

    def test_checkpoint_written_incrementally(self, tmp_path):
        path = str(tmp_path / "c.json")
        run_campaign(case_study_2(), self.config(path))
        state = load_checkpoint(path)
        assert len(state["outcomes"]) == 4
        assert state["meta"]["program"] == case_study_2().name
        assert "downgrade" in state["meta"]["plans"]

    def test_resume_reuses_banked_outcomes(self, tmp_path):
        path = str(tmp_path / "c.json")
        first = run_campaign(case_study_2(), self.config(path))
        lines = []
        second = run_campaign(
            case_study_2(), self.config(path, resume=True),
            progress=lines.append,
        )
        assert all("(resumed)" in line for line in lines)
        assert [o.as_dict() for o in second.outcomes] == [
            o.as_dict() for o in first.outcomes
        ]
        assert second.report.classes() == first.report.classes()

    def test_resume_with_unusable_checkpoint_starts_cold(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("not json at all")
        result = run_campaign(case_study_2(), self.config(str(path), resume=True))
        assert len(result.outcomes) == 4

    def test_resume_rejects_other_programs_checkpoint(self, tmp_path):
        path = str(tmp_path / "c.json")
        run_campaign(case_study_2(), self.config(path))
        lines = []
        result = run_campaign(
            spin_program(),
            CampaignConfig(seeds=[0], checkpoint=path, resume=True,
                           budget_steps=2000),
            progress=lines.append,
        )
        assert not any("(resumed)" in line for line in lines)
        assert len(result.outcomes) == 1


class TestPlanMatrix:
    def test_default_is_builtin_set(self):
        assert set(default_plan_matrix(2)) == set(builtin_plans(2))

    def test_unknown_plan_rejected(self):
        with pytest.raises(KeyError, match="unknown fault plan"):
            default_plan_matrix(2, ["downgrade", "gremlins"])

    def test_prepare_happens_once(self):
        calls = []

        class CountingTool(Home):
            def prepare(self, program):
                calls.append(1)
                return super().prepare(program)

        runner = CampaignRunner(
            case_study_2(),
            CampaignConfig(seeds=range(3)),
            tool=CountingTool(),
        )
        runner.run()
        assert len(calls) == 1

    def test_rank_crash_spec_reaches_runs(self):
        plan = FaultPlan((FaultSpec(RANK_CRASH, rank=1, at_call=1),), name="c")
        result = run_campaign(
            case_study_2(),
            CampaignConfig(seeds=[0], plans={"c": plan}),
        )
        assert result.outcomes[0].faults_fired == 1
