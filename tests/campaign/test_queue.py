"""Durable work-queue tests: lease semantics, dedup, poison quarantine.

Property-style coverage of the campaign service's core invariants:

* an expired lease is reclaimed **exactly once** per death;
* a reclaimed-then-completed cell deduplicates deterministically
  (first recorded result wins);
* a cell that crashes more than ``poison_retries`` times is
  quarantined instead of stalling the queue;
* journal replay reconstructs the exact same state the live queue had.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.campaign import (
    CellTask,
    DurableWorkQueue,
    Journal,
    RunOutcome,
    STATUS_QUARANTINED,
    cell_key,
    replay_journal,
)


def make_cells(n=4, plan="none"):
    return [CellTask(i, i, plan, None) for i in range(n)]


def outcome_for(task, tag="ok"):
    return RunOutcome(seed=task.seed, plan=task.plan_name, status="ok",
                      events=task.index * 10, failure=tag)


class TestLeasing:
    def test_acquire_lowest_index_first(self):
        q = DurableWorkQueue(make_cells(3))
        assert q.acquire("w0", 0.0).task.index == 0
        assert q.acquire("w1", 0.0).task.index == 1
        assert q.acquire("w2", 0.0).task.index == 2
        assert q.acquire("w3", 0.0) is None

    def test_leased_cell_not_reacquired(self):
        q = DurableWorkQueue(make_cells(1))
        assert q.acquire("w0", 0.0) is not None
        assert q.acquire("w1", 0.0) is None

    def test_heartbeat_extends_lease(self):
        q = DurableWorkQueue(make_cells(1), lease_seconds=10.0)
        q.acquire("w0", 0.0)
        q.heartbeat(0, 8.0)
        assert q.reclaim_expired(15.0) == []  # 8 + 10 > 15
        reclaimed = q.reclaim_expired(19.0)
        assert len(reclaimed) == 1

    def test_expired_lease_reclaimed_exactly_once(self):
        q = DurableWorkQueue(make_cells(1), lease_seconds=1.0)
        q.acquire("w0", 0.0)
        assert len(q.reclaim_expired(5.0)) == 1
        # the same death must not be double-counted
        assert q.reclaim_expired(5.0) == []
        assert q.record_crash(0) is False
        assert q.crashes[0] == 1

    def test_release_is_not_a_crash(self):
        q = DurableWorkQueue(make_cells(1))
        q.acquire("w0", 0.0)
        q.release(0)
        assert q.crashes.get(0) is None
        # the cell is schedulable again
        assert q.acquire("w1", 0.0).task.index == 0

    def test_reclaimed_cell_reacquirable_with_bumped_attempt(self):
        q = DurableWorkQueue(make_cells(1))
        first = q.acquire("w0", 0.0)
        assert first.attempt == 1
        q.record_crash(0)
        second = q.acquire("w1", 0.0)
        assert second.attempt == 2


class TestDedup:
    def test_duplicate_completion_first_wins(self):
        q = DurableWorkQueue(make_cells(1))
        task = q.cells[0]
        q.acquire("w0", 0.0)
        q.record_crash(0)  # w0 presumed dead, cell handed to w1
        q.acquire("w1", 0.0)
        assert q.complete(0, outcome_for(task, tag="first")) is True
        # w0 was merely slow, not dead: its late result is dropped
        assert q.complete(0, outcome_for(task, tag="second")) is False
        assert q.outcomes[0].failure == "first"

    def test_complete_after_quarantine_is_duplicate(self):
        q = DurableWorkQueue(make_cells(1), poison_retries=0)
        task = q.cells[0]
        q.acquire("w0", 0.0)
        assert q.record_crash(0) is True  # quarantined at cap 0
        assert q.complete(0, outcome_for(task)) is False
        assert q.quarantined[0].status == STATUS_QUARANTINED


class TestQuarantine:
    def test_quarantined_after_cap_plus_one_crashes(self):
        q = DurableWorkQueue(make_cells(1), poison_retries=2)
        for expect in (False, False, True):
            q.acquire("w", 0.0)
            assert q.record_crash(0) is expect
        assert q.quarantined[0].status == STATUS_QUARANTINED
        assert q.all_resolved()
        # quarantined cells are never rescheduled
        assert q.acquire("w", 0.0) is None

    def test_quarantine_outcome_is_deterministic(self):
        def poisoned():
            q = DurableWorkQueue(make_cells(1), poison_retries=1)
            for _ in range(2):
                q.acquire("w", 0.0)
                q.record_crash(0)
            return q.quarantined[0]

        assert poisoned().as_dict() == poisoned().as_dict()

    def test_queue_never_stalls_on_poison_cell(self):
        q = DurableWorkQueue(make_cells(3), poison_retries=0)
        while not q.all_resolved():
            lease = q.acquire("w", 0.0)
            assert lease is not None, "queue stalled"
            if lease.task.index == 1:
                q.record_crash(1)
            else:
                q.complete(lease.task.index, outcome_for(lease.task))
        statuses = [o.status for o in q.outcome_list()]
        assert statuses == ["ok", STATUS_QUARANTINED, "ok"]


class TestJournalRestore:
    def run_with_journal(self, path, script):
        q = DurableWorkQueue(
            make_cells(3), Journal(str(path), {"m": 1}, fresh=True),
            poison_retries=1,
        )
        script(q)
        q.journal.close()
        return q

    def restore(self, path, poison_retries=1):
        q = DurableWorkQueue(make_cells(3), poison_retries=poison_retries)
        q.restore(replay_journal(str(path)))
        return q

    def test_replay_rebuilds_outcomes_and_crashes(self, tmp_path):
        path = tmp_path / "j.jsonl"

        def script(q):
            lease = q.acquire("w0", 0.0)
            q.complete(0, outcome_for(lease.task))
            q.acquire("w0", 0.0)  # cell 1 leased, holder dies
            q.record_crash(1)
            q.acquire("w0", 0.0)  # cell 1 again, left open (kill -9)

        live = self.run_with_journal(path, script)
        restored = self.restore(path, poison_retries=2)
        assert restored.outcomes.keys() == live.outcomes.keys()
        assert restored.outcomes[0] == live.outcomes[0]
        # the reclaim plus the open lease both count as crashes
        assert restored.crashes == {1: 2}
        assert not restored.resolved(1)

    def test_open_lease_counts_as_crash(self, tmp_path):
        # a lease with no done/release/reclaim means its holder — the
        # coordinator included — died mid-cell
        path = tmp_path / "j.jsonl"
        self.run_with_journal(path, lambda q: q.acquire("serial", 0.0))
        restored = self.restore(path)
        assert restored.crashes == {0: 1}

    def test_released_lease_not_a_crash_on_replay(self, tmp_path):
        path = tmp_path / "j.jsonl"

        def script(q):
            q.acquire("w0", 0.0)
            q.release(0)

        self.run_with_journal(path, script)
        restored = self.restore(path)
        assert restored.crashes == {}

    def test_poison_cell_quarantined_across_restarts(self, tmp_path):
        # serial mode: a cell that hard-kills the coordinator leaves an
        # open lease per restart; by the cap-th restart the replay
        # itself quarantines it, so restarts converge instead of looping
        path = tmp_path / "j.jsonl"
        self.run_with_journal(path, lambda q: q.acquire("serial", 0.0))
        q2 = DurableWorkQueue(
            make_cells(3), Journal(str(path), {"m": 1}), poison_retries=1,
        )
        q2.restore(replay_journal(str(path)))
        q2.acquire("serial", 0.0)  # crashes again
        q2.journal.close()
        q3 = self.restore(path)
        assert q3.quarantined[0].status == STATUS_QUARANTINED
        assert q3.resolved(0)

    def test_quarantine_on_restore_is_journaled(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self.run_with_journal(path, lambda q: q.acquire("serial", 0.0))
        q2 = DurableWorkQueue(
            make_cells(3), Journal(str(path), {"m": 1}), poison_retries=0,
        )
        q2.restore(replay_journal(str(path)))
        assert q2.quarantined[0].status == STATUS_QUARANTINED
        q2.journal.close()
        types = [r["type"] for r in replay_journal(str(path)).records]
        assert "quarantine" in types

    def test_unknown_cells_skipped_with_warning(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self.run_with_journal(path, lambda q: q.acquire("w", 0.0))
        q = DurableWorkQueue([CellTask(0, 9, "other", None)])
        warnings = []
        q.restore(replay_journal(str(path)), warn=warnings.append)
        assert q.crashes == {}
        assert warnings and "outside the current matrix" in warnings[0]


class TestPropertyStyle:
    """Randomized schedules, invariant outcomes."""

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=0,
                    max_size=24))
    def test_any_crash_schedule_resolves_every_cell(self, crash_budget):
        # crash_budget[i] caps how often we crash the i-th granted lease
        # round-robin; whatever the schedule, the queue must resolve all
        # cells, and quarantine exactly those crashed past the cap
        cap = 1
        q = DurableWorkQueue(make_cells(4), poison_retries=cap)
        crashes = {}
        step = 0
        while not q.all_resolved():
            lease = q.acquire("w", 0.0)
            assert lease is not None, "queue stalled with work left"
            index = lease.task.index
            budget = crash_budget[step % len(crash_budget)] if crash_budget else 0
            step += 1
            if crashes.get(index, 0) < budget:
                crashes[index] = crashes.get(index, 0) + 1
                q.record_crash(index)
            else:
                q.complete(index, outcome_for(lease.task))
        for task in q.cells:
            crashed = crashes.get(task.index, 0)
            if crashed > cap:
                assert task.index in q.quarantined
            else:
                assert task.index in q.outcomes
        assert len(q.outcome_list()) == 4

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_journal_replay_matches_live_state(self, tmp_path_factory, data):
        # drive a journaled queue through a random op sequence, then
        # replay: outcomes, quarantines and crash tallies must match
        tmp = tmp_path_factory.mktemp("queue")
        path = tmp / "j.jsonl"
        q = DurableWorkQueue(
            make_cells(3), Journal(str(path), {}, fresh=True),
            poison_retries=1,
        )
        for _ in range(data.draw(st.integers(min_value=0, max_value=12))):
            if q.all_resolved():
                break
            lease = q.acquire("w", 0.0)
            if lease is None:
                break
            op = data.draw(st.sampled_from(["complete", "crash", "release"]))
            if op == "complete":
                q.complete(lease.task.index, outcome_for(lease.task))
            elif op == "crash":
                q.record_crash(lease.task.index)
            else:
                q.release(lease.task.index)
        q.journal.close()
        restored = DurableWorkQueue(make_cells(3), poison_retries=1)
        restored.restore(replay_journal(str(path)))
        assert restored.outcomes == q.outcomes
        assert restored.quarantined == q.quarantined
        assert {i: c for i, c in restored.crashes.items()} == {
            i: c for i, c in q.crashes.items() if c > 0
        }


class TestOutcomeOrder:
    def test_outcome_list_is_canonical_regardless_of_completion_order(self):
        q = DurableWorkQueue(make_cells(3))
        # complete out of order
        for index in (2, 0, 1):
            while True:
                lease = q.acquire("w", 0.0)
                if lease.task.index == index:
                    q.complete(index, outcome_for(lease.task))
                    # release the others we grabbed while hunting
                    for other in list(q._leases):
                        q.release(other)
                    break
        assert [o.seed for o in q.outcome_list()] == [0, 1, 2]

    def test_cell_key_matches_outcome_key(self):
        task = CellTask(0, 7, "crash", None)
        assert cell_key(task) == RunOutcome(seed=7, plan="crash").key
