"""PMPI-style call-record extraction tests (baselines/base.py)."""

import pytest

from repro.baselines import call_records_from_events
from repro.events import EventLog, MPICall
from repro.events.event import MonitoredKind


def log_with(*calls):
    log = EventLog()
    for op, args, thread in calls:
        log.append(MPICall(
            proc=0, thread=thread, seq=log.next_seq(), time=1.0,
            op=op, phase="begin", call_id=log.next_seq() + 1000,
            callsite=1, loc="1:1", is_main_thread=(thread == 0), args=args,
        ))
    return log


class TestCallRecords:
    def test_p2p_args_mapped_to_monitored_kinds(self):
        log = log_with(("mpi_recv", {"peer": 3, "tag": 9, "comm": 0}, 1))
        rec = next(iter(call_records_from_events(log, 0).values()))
        assert rec.arg(MonitoredKind.SRC) == 3
        assert rec.arg(MonitoredKind.TAG) == 9
        assert rec.arg(MonitoredKind.COMM) == 0

    def test_request_mapped(self):
        log = log_with(("mpi_wait", {"request": 12}, 2))
        rec = next(iter(call_records_from_events(log, 0).values()))
        assert rec.arg(MonitoredKind.REQUEST) == 12

    def test_collective_gets_collective_kind(self):
        log = log_with(("mpi_barrier", {"comm": 0}, 1))
        rec = next(iter(call_records_from_events(log, 0).values()))
        assert rec.arg(MonitoredKind.COLLECTIVE) == "mpi_barrier"

    def test_finalize_gets_finalize_kind(self):
        log = log_with(("mpi_finalize", {}, 1))
        rec = next(iter(call_records_from_events(log, 0).values()))
        assert rec.arg(MonitoredKind.FINALIZE) == 1

    def test_init_calls_excluded(self):
        log = log_with(("mpi_init_thread", {"provided": 3}, 0))
        assert call_records_from_events(log, 0) == {}

    def test_exclude_ops_filter(self):
        log = log_with(
            ("mpi_probe", {"peer": 0, "tag": 1, "comm": 0}, 1),
            ("mpi_recv", {"peer": 0, "tag": 1, "comm": 0}, 2),
        )
        records = call_records_from_events(
            log, 0, exclude_ops=frozenset({"mpi_probe"})
        )
        assert [r.op for r in records.values()] == ["mpi_recv"]

    def test_main_thread_flag_carried(self):
        log = log_with(("mpi_recv", {"peer": 0, "tag": 1, "comm": 0}, 0),
                       ("mpi_recv", {"peer": 0, "tag": 1, "comm": 0}, 4))
        records = sorted(call_records_from_events(log, 0).values(),
                         key=lambda r: r.thread)
        assert records[0].is_main_thread and not records[1].is_main_thread

    def test_other_process_ignored(self):
        log = log_with(("mpi_recv", {"peer": 0, "tag": 1, "comm": 0}, 1))
        assert call_records_from_events(log, 1) == {}
