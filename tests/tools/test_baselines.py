"""Marmot and ITC model tests — the comparison behaviours of §V-B."""

import pytest

from repro.baselines import BaseRunner, IntelThreadChecker, Marmot, itc_ignores_lock
from repro.baselines.marmot import observed_concurrency, observed_intervals
from repro.minilang import parse
from repro.violations import CONCURRENT_RECV, PROBE
from repro.workloads.case_studies import case_study_2, case_study_2_fixed

SKEWED_RECV = """
program skew;
var buf[2];
func main() {
    var p = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var partner = 1 - rank;
    mpi_send(buf, 1, partner, 7, MPI_COMM_WORLD);
    mpi_send(buf, 1, partner, 7, MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        if (omp_get_thread_num() == 1) {
            compute(500);
        }
        mpi_recv(buf, 1, partner, 7, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
"""

NAMED_CRITICAL_BENIGN = """
program benign;
var counter = 0;
func main() {
    var p = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        omp critical (stats) {
            counter = counter + 1;
        }
    }
    mpi_finalize();
}
"""

PROBE_ONLY = """
program probes;
var buf[2];
func main() {
    var p = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var partner = 1 - rank;
    compute(50);
    mpi_send(buf, 1, partner, 8, MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        mpi_probe(partner, 8, MPI_COMM_WORLD);
    }
    mpi_recv(buf, 1, partner, 8, MPI_COMM_WORLD);
    mpi_finalize();
}
"""


class TestBaseRunner:
    def test_reports_nothing(self):
        report = BaseRunner().check(case_study_2(), nprocs=2)
        assert len(report.violations) == 0

    def test_cheapest_makespan(self):
        base = BaseRunner().check(case_study_2(), nprocs=2).makespan
        marmot = Marmot().check(case_study_2(), nprocs=2).makespan
        itc = IntelThreadChecker().check(case_study_2(), nprocs=2).makespan
        assert base < marmot and base < itc


class TestMarmot:
    def test_detects_manifest_violation(self):
        report = Marmot().check(case_study_2(), nprocs=2)
        assert CONCURRENT_RECV in report.violations.classes()

    def test_clean_program_clean(self):
        report = Marmot().check(case_study_2_fixed(), nprocs=2)
        assert len(report.violations) == 0

    def test_misses_skewed_potential_violation(self):
        """The central comparison claim: a potential race whose calls
        never actually overlap is invisible to Marmot..."""
        report = Marmot().check(parse(SKEWED_RECV), nprocs=2)
        assert CONCURRENT_RECV not in report.violations.classes()

    def test_home_catches_the_same_skewed_violation(self):
        """...but HOME's lockset+happens-before analysis finds it."""
        from repro.home import check_program

        report = check_program(parse(SKEWED_RECV), nprocs=2)
        assert CONCURRENT_RECV in report.violations.classes()

    def test_observed_intervals_pair_begin_end(self):
        report = Marmot().check(case_study_2(), nprocs=2)
        intervals = observed_intervals(report.execution.log, 0)
        assert intervals
        for begin, end in intervals.values():
            assert begin <= end

    def test_observed_concurrency_requires_overlap(self):
        report = Marmot().check(parse(SKEWED_RECV), nprocs=2)
        oc = observed_concurrency(report.execution.log, 0)
        recv_pairs = oc.pairs_for_ops({"mpi_recv"}, {"mpi_recv"})
        assert recv_pairs == []

    def test_costlier_than_base(self):
        base = BaseRunner().check(case_study_2(), nprocs=2).makespan
        marmot = Marmot().check(case_study_2(), nprocs=2).makespan
        assert marmot > base


class TestITC:
    def test_detects_manifest_violation(self):
        report = IntelThreadChecker().check(case_study_2(), nprocs=2)
        assert CONCURRENT_RECV in report.violations.classes()

    def test_named_critical_false_positive(self):
        """ITC cannot recognize named criticals: a perfectly serialized
        counter update is reported as a data race."""
        report = IntelThreadChecker().check(parse(NAMED_CRITICAL_BENIGN), nprocs=2)
        assert "DataRace" in report.violations.classes()

    def test_home_no_false_positive_on_named_critical(self):
        from repro.home import check_program

        report = check_program(parse(NAMED_CRITICAL_BENIGN), nprocs=2)
        assert len(report.violations) == 0

    def test_marmot_no_false_positive_on_named_critical(self):
        report = Marmot().check(parse(NAMED_CRITICAL_BENIGN), nprocs=2)
        assert len(report.violations) == 0

    def test_probe_only_violation_invisible(self):
        """ITC does not intercept MPI_Probe, so a probe-vs-probe race
        produces no report."""
        report = IntelThreadChecker().check(parse(PROBE_ONLY), nprocs=2)
        assert PROBE not in report.violations.classes()

    def test_home_sees_the_probe_violation(self):
        from repro.home import check_program

        report = check_program(parse(PROBE_ONLY), nprocs=2)
        assert PROBE in report.violations.classes()

    def test_ignores_lock_predicate(self):
        assert itc_ignores_lock("critical:stats")
        assert not itc_ignores_lock("critical:<anonymous>")
        assert not itc_ignores_lock("omplock:foo")

    def test_most_expensive_tool(self):
        from repro.home import Home

        home = Home().check(case_study_2(), nprocs=2).makespan
        itc = IntelThreadChecker().check(case_study_2(), nprocs=2).makespan
        assert itc > home
