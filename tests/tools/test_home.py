"""HOME pipeline tests."""

import pytest

from repro.home import Home, HomeOptions, check_program
from repro.minilang import parse
from repro.violations import (
    COLLECTIVE,
    CONCURRENT_RECV,
    CONCURRENT_REQUEST,
    FINALIZATION,
    INITIALIZATION,
    PROBE,
)
from repro.workloads.case_studies import (
    case_study_1,
    case_study_2,
    case_study_2_fixed,
    safe_funneled,
)


class TestCaseStudies:
    def test_case_study_1_initialization_violation(self):
        report = check_program(case_study_1(), nprocs=2)
        assert INITIALIZATION in report.violations.classes()
        # The static phase flags it before any execution.
        assert any(
            w.kind == "initialization" for w in report.extras["static_warnings"]
        )

    def test_case_study_1_observably_broken(self):
        report = check_program(case_study_1(), nprocs=2)
        assert report.deadlocked  # half the send/recv pairing is skipped

    def test_case_study_2_concurrent_recv(self):
        report = check_program(case_study_2(), nprocs=2)
        assert report.violations.classes() == [CONCURRENT_RECV]

    def test_case_study_2_fixed_clean(self):
        report = check_program(case_study_2_fixed(), nprocs=2)
        assert len(report.violations) == 0
        assert not report.deadlocked

    def test_safe_funneled_clean(self):
        report = check_program(safe_funneled(), nprocs=2)
        assert len(report.violations) == 0
        assert report.extras["static_warnings"] == []


class TestSelectiveInstrumentation:
    def test_static_filter_reported(self):
        report = check_program(safe_funneled(), nprocs=2)
        assert report.extras["instrumented_sites"] >= 1
        assert report.extras["filtered_sites"] >= 1

    def test_instrument_all_policy_costs_more(self):
        options_all = HomeOptions(instrument_policy="all")
        default = check_program(case_study_2(), nprocs=2)
        everything = check_program(case_study_2(), nprocs=2, options=options_all)
        assert everything.makespan >= default.makespan
        # same violations either way — the filter drops only safe regions
        assert everything.violations.classes() == default.violations.classes()

    def test_filtered_regions_are_really_error_free(self):
        """The overhead reduction is sound: serial-region MPI calls the
        filter drops cannot participate in thread-level races."""
        report = check_program(safe_funneled(), nprocs=2)
        static = report.static
        for site in static.instrumentation.filtered:
            assert not site.in_parallel


class TestDetectorKnobs:
    def test_seed_does_not_change_verdict(self):
        classes = set()
        for seed in range(4):
            report = check_program(case_study_2(), nprocs=2, seed=seed)
            classes.add(tuple(report.violations.classes()))
        assert classes == {(CONCURRENT_RECV,)}

    def test_report_summary_format(self):
        report = check_program(case_study_2(), nprocs=2)
        text = report.summary()
        assert "HOME" in text and "ConcurrentRecvViolation" in text

    def test_overhead_against_plain_run(self):
        from repro.baselines import BaseRunner

        base = BaseRunner().check(case_study_2(), nprocs=2)
        home = check_program(case_study_2(), nprocs=2)
        assert home.makespan > base.makespan


ALL_SIX = """
program allsix;
var buf[2];
func main() {
    var provided = mpi_init_thread(MPI_THREAD_SERIALIZED);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var partner = 1 - rank;
    mpi_send(buf, 1, partner, 7, MPI_COMM_WORLD);
    mpi_send(buf, 1, partner, 7, MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        mpi_recv(buf, 1, partner, 7, MPI_COMM_WORLD);
    }
    mpi_send(buf, 1, partner, 8, MPI_COMM_WORLD);
    var req = mpi_irecv(buf, 1, partner, 8, MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        mpi_wait(req);
    }
    mpi_send(buf, 1, partner, 9, MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        mpi_probe(partner, 9, MPI_COMM_WORLD);
    }
    mpi_recv(buf, 1, partner, 9, MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        mpi_barrier(MPI_COMM_WORLD);
    }
    omp parallel num_threads(2) {
        if (omp_get_thread_num() == 1) {
            mpi_finalize();
        }
    }
}
"""


class TestAllSixClasses:
    def test_every_violation_class_detectable(self):
        report = check_program(parse(ALL_SIX), nprocs=2)
        classes = set(report.violations.classes())
        assert classes == {
            INITIALIZATION, FINALIZATION, CONCURRENT_RECV,
            CONCURRENT_REQUEST, PROBE, COLLECTIVE,
        }
