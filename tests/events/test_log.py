"""EventLog query tests."""

import pytest

from repro.events import EventLog, LockAcquire, MemAccess, MonitoredWrite, MPICall
from repro.events.event import MonitoredKind


def make_log():
    log = EventLog()
    log.append(MPICall(proc=0, thread=0, seq=log.next_seq(), time=1.0,
                       op="mpi_send", phase="begin", call_id=1))
    log.append(MPICall(proc=0, thread=0, seq=log.next_seq(), time=2.0,
                       op="mpi_send", phase="end", call_id=1))
    log.append(MPICall(proc=0, thread=1, seq=log.next_seq(), time=1.5,
                       op="mpi_recv", phase="begin", call_id=2))
    log.append(MPICall(proc=1, thread=0, seq=log.next_seq(), time=0.5,
                       op="mpi_barrier", phase="begin", call_id=3))
    log.append(MonitoredWrite(proc=0, thread=1, seq=log.next_seq(), time=1.4,
                              kind=MonitoredKind.TAG, value=7, mpi_op="mpi_recv",
                              call_id=2))
    log.append(LockAcquire(proc=0, thread=0, seq=log.next_seq(), time=3.0, lock="L"))
    return log


class TestQueries:
    def test_len_and_iter(self):
        log = make_log()
        assert len(log) == 6
        assert len(list(log)) == 6

    def test_seq_monotonic(self):
        log = make_log()
        seqs = [e.seq for e in log]
        assert seqs == sorted(seqs)

    def test_of_type_exact(self):
        log = make_log()
        assert len(log.of_type(MPICall)) == 4
        assert len(log.of_type(MonitoredWrite)) == 1
        assert log.of_type(MemAccess) == []

    def test_processes(self):
        assert make_log().processes() == [0, 1]

    def test_threads_of(self):
        assert make_log().threads_of(0) == [0, 1]

    def test_for_process(self):
        assert len(make_log().for_process(1)) == 1

    def test_by_thread_streams(self):
        streams = make_log().by_thread(0)
        assert set(streams) == {0, 1}
        assert len(streams[0]) == 3

    def test_mpi_calls_phase_filter(self):
        log = make_log()
        begins = log.mpi_calls(0)
        assert all(e.phase == "begin" for e in begins)
        assert len(begins) == 2

    def test_call_intervals_pairs_begin_end(self):
        log = make_log()
        pairs = log.mpi_call_intervals(0)
        assert len(pairs) == 1
        begin, end = pairs[0]
        assert begin.call_id == end.call_id == 1

    def test_unfinished_calls(self):
        log = make_log()
        unfinished = log.unfinished_mpi_calls(0)
        assert [e.call_id for e in unfinished] == [2]

    def test_monitored_writes(self):
        log = make_log()
        writes = log.monitored_writes(0)
        assert len(writes) == 1 and writes[0].kind is MonitoredKind.TAG
        assert log.monitored_writes(1) == []

    def test_counts(self):
        counts = make_log().counts()
        assert counts["MPICall"] == 4
        assert counts["LockAcquire"] == 1
