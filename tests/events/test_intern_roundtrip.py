"""Interned event records: identity sharing without serialization drift.

Event interning (:mod:`repro.events.intern`) replaces per-emission
``f"{line}:{col}"`` formatting with one shared string per callsite.
That is an identity-level optimization only — these tests pin the
observable contract: serialized traces are byte-for-byte what the
uninterned formatting would produce, and round-trip losslessly.

Also here: the corrupt-tail *byte offset* reported by the trace loader
and the campaign journal, which shares the same salvage policy.
"""

import io
import json

import pytest

from helpers import run_src

from repro.errors import AnalysisError
from repro.events import dump_log, load_log
from repro.events.intern import intern_loc, intern_table_size
from repro.minilang.ast_nodes import SourceLoc


RACY = """
program pingpong;
var a[2];
func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        if (rank == 0) { mpi_send(a, 1, 1, 0, MPI_COMM_WORLD); }
        if (rank == 1) { mpi_recv(a, 1, 0, 0, MPI_COMM_WORLD); }
    }
    mpi_barrier(MPI_COMM_WORLD);
    mpi_finalize();
}
"""


class TestInternLoc:
    def test_value_matches_plain_formatting(self):
        loc = SourceLoc(line=12, col=7)
        assert intern_loc(loc) == f"{loc.line}:{loc.col}" == "12:7"

    def test_same_site_shares_one_object(self):
        loc = SourceLoc(line=3, col=4)
        assert intern_loc(loc) is intern_loc(SourceLoc(line=3, col=4))

    def test_distinct_sites_distinct_strings(self):
        assert intern_loc(SourceLoc(1, 2)) != intern_loc(SourceLoc(2, 1))

    def test_table_is_bounded_bookkeeping(self):
        before = intern_table_size()
        intern_loc(SourceLoc(line=888, col=before + 1))
        assert intern_table_size() >= before


class TestInternedTraceRoundTrip:
    def _trace(self):
        result = run_src(RACY, nprocs=2, threads=2, monitor_memory=True)
        buf = io.StringIO()
        dump_log(result.log, buf, metadata={"seed": 0})
        return result, buf.getvalue()

    def test_locs_in_trace_are_plain_line_col(self):
        _, text = self._trace()
        locs = [
            json.loads(line).get("loc")
            for line in text.splitlines()[1:]
        ]
        present = [loc for loc in locs if loc is not None]
        assert present, "trace should carry interned loc strings"
        for loc in present:
            line, col = loc.split(":")
            assert line.isdigit() and col.isdigit()

    def test_round_trip_is_lossless(self):
        result, text = self._trace()
        log, meta = load_log(io.StringIO(text))
        assert meta["seed"] == 0
        assert len(log) == len(result.log)
        buf = io.StringIO()
        dump_log(log, buf, metadata={"seed": 0})
        assert buf.getvalue() == text

    def test_interning_shares_emitted_loc_objects(self):
        result, _ = self._trace()
        by_value = {}
        for event in result.log:
            loc = getattr(event, "loc", None)
            if loc is None:
                continue
            by_value.setdefault(loc, loc)
            # equal loc strings must be the same interned object
            assert by_value[loc] is loc


class TestCorruptTailByteOffset:
    def _damaged(self, tmp_path):
        result = run_src(RACY, nprocs=2, threads=2)
        path = tmp_path / "run.trace"
        dump_log(result.log, path)
        raw = path.read_bytes()
        lines = raw.splitlines(keepends=True)
        # the offset where the final record starts, then damage it
        offset = len(raw) - len(lines[-1])
        damaged = b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2]
        path.write_bytes(damaged)
        return path, offset

    def test_strict_error_names_byte_offset(self, tmp_path):
        path, offset = self._damaged(tmp_path)
        with pytest.raises(AnalysisError, match=f"byte offset {offset}"):
            load_log(path)

    def test_tolerant_meta_records_byte_offset(self, tmp_path):
        path, offset = self._damaged(tmp_path)
        log, meta = load_log(path, strict=False)
        assert meta["salvaged"] is True
        assert meta["dropped_lines"] == 1
        assert meta["corrupt_byte_offset"] == offset
        # the offset is actionable: truncating there yields a clean file
        with open(path, "r+b") as fh:
            fh.truncate(offset)
        clean_log, clean_meta = load_log(path, strict=False)
        assert "salvaged" not in clean_meta
        assert len(clean_log) == len(log)

    def test_journal_replay_reports_byte_offset(self, tmp_path):
        from repro.campaign.journal import Journal, replay_journal

        path = tmp_path / "campaign.journal"
        with Journal(str(path), meta={"matrix": "m"}) as journal:
            journal.append("lease", cell="c0", worker=1, attempt=1)
            journal.append("done", cell="c0", outcome={"status": "ok"})
        raw = path.read_bytes()
        offset = len(raw) - len(raw.splitlines(keepends=True)[-1])
        path.write_bytes(raw[: offset + 10])
        replay = replay_journal(str(path))
        assert replay.truncated
        assert replay.dropped == 1
        assert replay.corrupt_byte_offset == offset
        assert [r["type"] for r in replay.records] == ["lease"]

    def test_clean_journal_has_no_offset(self, tmp_path):
        from repro.campaign.journal import Journal, replay_journal

        path = tmp_path / "campaign.journal"
        with Journal(str(path), meta={}) as journal:
            journal.append("lease", cell="c0", worker=1, attempt=1)
        replay = replay_journal(str(path))
        assert not replay.truncated
        assert replay.corrupt_byte_offset == -1
