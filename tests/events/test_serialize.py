"""Trace serialization round-trip tests."""

import io

import pytest

from helpers import run_main

from repro.analysis.dynamic_.hybrid import analyze
from repro.errors import AnalysisError
from repro.events import EventLog, MPICall, dump_log, load_log
from repro.home import Home
from repro.violations import CONCURRENT_RECV, match_violations
from repro.workloads.case_studies import case_study_2


def roundtrip(log, metadata=None):
    buf = io.StringIO()
    dump_log(log, buf, metadata=metadata)
    buf.seek(0)
    return load_log(buf)


class TestRoundTrip:
    def test_empty_log(self):
        log, meta = roundtrip(EventLog())
        assert len(log) == 0 and meta == {}

    def test_metadata_preserved(self):
        _, meta = roundtrip(EventLog(), metadata={"program": "x", "seed": 3})
        assert meta == {"program": "x", "seed": 3}

    def test_all_event_types_roundtrip(self):
        body = """
var x = 0;
omp parallel num_threads(2) {
    omp critical { x = x + 1; }
    omp barrier;
}
"""
        result = run_main(body, monitor_memory=True)
        loaded, _ = roundtrip(result.log)
        assert len(loaded) == len(result.log)
        assert loaded.counts() == result.log.counts()
        for original, reloaded in zip(result.log, loaded):
            assert original == reloaded

    def test_mpi_events_roundtrip_with_args(self):
        report = Home().check(case_study_2(), nprocs=2)
        loaded, _ = roundtrip(report.execution.log)
        originals = report.execution.log.mpi_calls(0)
        reloadeds = loaded.mpi_calls(0)
        assert len(originals) == len(reloadeds)
        for a, b in zip(originals, reloadeds):
            assert (a.op, a.call_id, a.args.get("tag")) == (
                b.op, b.call_id, b.args.get("tag")
            )

    def test_reanalysis_of_loaded_trace_reproduces_verdict(self):
        """The offline pipeline works from a file exactly as from memory."""
        report = Home().check(case_study_2(), nprocs=2)
        loaded, _ = roundtrip(report.execution.log)
        violations = match_violations(loaded, analyze(loaded))
        assert CONCURRENT_RECV in violations.classes()
        assert len(violations) == len(report.violations)

    def test_file_based_roundtrip(self, tmp_path):
        report = Home().check(case_study_2(), nprocs=2)
        path = tmp_path / "run.trace"
        dump_log(report.execution.log, path, metadata={"k": 1})
        loaded, meta = load_log(path)
        assert meta == {"k": 1}
        assert len(loaded) == len(report.execution.log)


class TestErrors:
    def test_empty_file_rejected(self):
        with pytest.raises(AnalysisError, match="empty trace"):
            load_log(io.StringIO(""))

    def test_wrong_format_rejected(self):
        with pytest.raises(AnalysisError, match="not a repro trace"):
            load_log(io.StringIO('{"format": "other"}\n'))

    def test_wrong_version_rejected(self):
        with pytest.raises(AnalysisError, match="unsupported trace version"):
            load_log(io.StringIO('{"format": "repro-trace", "version": 99}\n'))

    def test_unknown_event_type_rejected(self):
        data = (
            '{"format": "repro-trace", "version": 1}\n'
            '{"t": "Mystery", "proc": 0}\n'
        )
        with pytest.raises(AnalysisError, match="unknown event type"):
            load_log(io.StringIO(data))

    def test_malformed_record_rejected(self):
        data = (
            '{"format": "repro-trace", "version": 1}\n'
            '{"t": "LockAcquire", "bogus_field": 1}\n'
        )
        with pytest.raises(AnalysisError, match="malformed"):
            load_log(io.StringIO(data))


class TestTruncatedTraceSalvage:
    """A run killed mid-write leaves a damaged trailing line."""

    def truncated_trace(self, tmp_path):
        report = Home().check(case_study_2(), nprocs=2)
        path = tmp_path / "run.trace"
        dump_log(report.execution.log, path, metadata={"seed": 0})
        lines = path.read_text().splitlines()
        assert len(lines) > 10
        # chop the last record in half, as an interrupted write would
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        path.write_text("\n".join(lines) + "\n")
        return path, len(lines)

    def test_strict_load_names_the_bad_line(self, tmp_path):
        path, total = self.truncated_trace(tmp_path)
        with pytest.raises(AnalysisError, match="corrupt trace line"):
            load_log(path)

    def test_tolerant_load_salvages_valid_prefix(self, tmp_path):
        path, total = self.truncated_trace(tmp_path)
        log, meta = load_log(path, strict=False)
        assert meta["salvaged"] is True
        assert meta["dropped_lines"] == 1
        assert meta["seed"] == 0
        # header + salvaged events + dropped line account for the file
        assert len(log) == total - 1 - meta["dropped_lines"]

    def test_tolerant_load_drops_suffix_after_first_bad_line(self, tmp_path):
        path, total = self.truncated_trace(tmp_path)
        with open(path, "a") as fh:
            fh.write('{"also": "suspect"}\n')
        log, meta = load_log(path, strict=False)
        assert meta["dropped_lines"] == 2
        assert len(log) == total - 1 - 1

    def test_tolerant_load_of_clean_trace_is_unmarked(self, tmp_path):
        report = Home().check(case_study_2(), nprocs=2)
        path = tmp_path / "run.trace"
        dump_log(report.execution.log, path)
        _, meta = load_log(path, strict=False)
        assert "salvaged" not in meta
