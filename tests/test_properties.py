"""Property-based tests (hypothesis) on core data structures and invariants."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis.dynamic_.lockset import LocksetAnalysis
from repro.analysis.dynamic_.vectorclock import VectorClock, join_all
from repro.minilang import ast_equal, parse, print_program
from repro.mpi.constants import MPI_ANY_SOURCE, MPI_ANY_TAG
from repro.mpi.message import Mailbox, Message
from repro.omp.team import BarrierState, ForState, static_chunks
from repro.runtime.scheduler import Scheduler, Step

import numpy as np

# ---------------------------------------------------------------------------
# Vector clocks
# ---------------------------------------------------------------------------

clocks = st.dictionaries(
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=20),
    max_size=6,
).map(VectorClock)


class TestVectorClockLaws:
    @given(clocks)
    def test_leq_reflexive(self, a):
        assert a.leq(a)

    @given(clocks, clocks)
    def test_antisymmetry(self, a, b):
        if a.leq(b) and b.leq(a):
            assert a == b

    @given(clocks, clocks, clocks)
    def test_transitivity(self, a, b, c):
        if a.leq(b) and b.leq(c):
            assert a.leq(c)

    @given(clocks, clocks)
    def test_join_is_upper_bound(self, a, b):
        j = a.join(b)
        assert a.leq(j) and b.leq(j)

    @given(clocks, clocks)
    def test_join_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(clocks, clocks, clocks)
    def test_join_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(clocks)
    def test_join_idempotent(self, a):
        assert a.join(a) == a

    @given(clocks, st.integers(min_value=0, max_value=6))
    def test_tick_strictly_increases(self, a, tid):
        b = a.tick(tid)
        assert a.happens_before(b)

    @given(clocks, clocks)
    def test_trichotomy(self, a, b):
        """Exactly one of: a<b, b<a, a==b, concurrent."""
        relations = [
            a.happens_before(b),
            b.happens_before(a),
            a == b,
            a.concurrent(b),
        ]
        assert sum(bool(r) for r in relations) == 1


# ---------------------------------------------------------------------------
# Lockset analysis
# ---------------------------------------------------------------------------

lock_names = st.sets(st.sampled_from(["A", "B", "C", "D"]), max_size=3).map(frozenset)
accesses = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),  # thread
        lock_names,
        st.booleans(),                          # is_write
    ),
    min_size=1,
    max_size=25,
)


class TestLocksetLaws:
    @given(accesses)
    def test_candidate_is_intersection_of_all_locksets(self, seq):
        ls = LocksetAnalysis()
        for i, (thread, locks, is_write) in enumerate(seq):
            ls.access("v", i, thread, locks, is_write)
        loc = ls.locations["v"]
        expected = seq[0][1]
        for _, locks, _ in seq[1:]:
            expected &= locks
        assert loc.candidate == expected

    @given(accesses)
    def test_candidate_monotonically_shrinks(self, seq):
        ls = LocksetAnalysis()
        previous = None
        for i, (thread, locks, is_write) in enumerate(seq):
            loc = ls.access("v", i, thread, locks, is_write)
            if previous is not None:
                assert loc.candidate <= previous
            previous = loc.candidate

    @given(accesses)
    def test_racy_pairs_symmetric_in_threads(self, seq):
        ls = LocksetAnalysis()
        for i, (thread, locks, is_write) in enumerate(seq):
            ls.access("v", i, thread, locks, is_write)
        for a, b in ls.racy_pairs("v"):
            assert a.thread != b.thread
            assert a.is_write or b.is_write
            assert not (a.locks & b.locks)

    @given(accesses)
    def test_race_candidate_implies_multiple_threads_and_writer(self, seq):
        ls = LocksetAnalysis()
        for i, (thread, locks, is_write) in enumerate(seq):
            ls.access("v", i, thread, locks, is_write)
        loc = ls.locations["v"]
        if loc.is_race_candidate:
            assert len(loc.threads) >= 2
            assert loc.writers


# ---------------------------------------------------------------------------
# Message matching
# ---------------------------------------------------------------------------

envelopes = st.tuples(
    st.integers(min_value=0, max_value=3),   # src
    st.integers(min_value=0, max_value=3),   # tag
)


class TestMatchingLaws:
    @given(st.lists(envelopes, min_size=1, max_size=20))
    def test_non_overtaking_per_envelope(self, sends):
        """Taking repeatedly with one envelope yields that envelope's
        messages in send order."""
        box = Mailbox(0, 0)
        for i, (src, tag) in enumerate(sends):
            box.deliver(Message(
                src=src, dst=0, tag=tag, comm=0,
                payload=np.asarray([float(i)]), sent_time=0.0, avail_time=0.0,
            ))
        for src, tag in set(sends):
            taken = []
            while (m := box.take(src, tag)) is not None:
                taken.append(float(m.payload[0]))
            assert taken == sorted(taken)

    @given(st.lists(envelopes, min_size=1, max_size=20))
    def test_wildcard_take_drains_everything_in_order(self, sends):
        box = Mailbox(0, 0)
        for i, (src, tag) in enumerate(sends):
            box.deliver(Message(
                src=src, dst=0, tag=tag, comm=0,
                payload=np.asarray([float(i)]), sent_time=0.0, avail_time=0.0,
            ))
        order = []
        while (m := box.take(MPI_ANY_SOURCE, MPI_ANY_TAG)) is not None:
            order.append(float(m.payload[0]))
        assert order == list(range(len(sends)))

    @given(st.lists(envelopes, max_size=12), envelopes)
    def test_find_take_consistency(self, sends, probe_env):
        box = Mailbox(0, 0)
        for i, (src, tag) in enumerate(sends):
            box.deliver(Message(
                src=src, dst=0, tag=tag, comm=0,
                payload=np.asarray([float(i)]), sent_time=0.0, avail_time=0.0,
            ))
        src, tag = probe_env
        found = box.find(src, tag)
        taken = box.take(src, tag)
        assert found is taken


# ---------------------------------------------------------------------------
# Worksharing
# ---------------------------------------------------------------------------


class TestWorksharingLaws:
    @given(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=1, max_value=6),
        st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
    )
    def test_static_chunks_partition_iterations(self, n, nthreads, chunk):
        iterations = list(range(n))
        pieces = [
            static_chunks(iterations, nthreads, t, chunk) for t in range(nthreads)
        ]
        flat = [i for piece in pieces for i in piece]
        assert sorted(flat) == iterations

    @given(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=4),
    )
    def test_dynamic_grab_partitions_iterations(self, n, nthreads, chunk):
        state = ForState(tuple(range(n)))
        grabbed = []
        while True:
            batch = state.grab(chunk)
            if not batch:
                break
            grabbed.extend(batch)
        assert grabbed == list(range(n))

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=4))
    def test_barrier_epochs_advance(self, size, rounds):
        barrier = BarrierState(size)
        for r in range(rounds):
            epochs = [barrier.arrive(float(i)) for i in range(size)]
            assert epochs == [r] * size
            assert all(barrier.passed(e) for e in epochs)


# ---------------------------------------------------------------------------
# Parser / printer round trip on generated programs
# ---------------------------------------------------------------------------

_names = st.sampled_from(["x", "y", "z", "acc"])
_ints = st.integers(min_value=0, max_value=99)


def _expr_text(draw_depth=0):
    return st.recursive(
        _ints.map(str) | _names,
        lambda inner: st.tuples(
            inner, st.sampled_from(["+", "-", "*", "<", "=="]), inner
        ).map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
        max_leaves=6,
    )


_stmts = st.recursive(
    st.one_of(
        st.tuples(_names, _expr_text()).map(lambda t: f"{t[0]} = {t[1]};"),
        _expr_text().map(lambda e: f"print({e});"),
        st.just("compute(1);"),
        st.just("omp barrier;"),
    ),
    lambda inner: st.one_of(
        st.tuples(_expr_text(), st.lists(inner, max_size=3)).map(
            lambda t: "if (%s) {\n%s\n}" % (t[0], "\n".join(t[1]))
        ),
        st.lists(inner, max_size=3).map(
            lambda body: "omp critical {\n%s\n}" % "\n".join(body)
        ),
    ),
    max_leaves=8,
)


class TestRoundTripProperty:
    @given(st.lists(_stmts, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_generated_programs_roundtrip(self, stmts):
        decls = "var x = 0;\nvar y = 0;\nvar z = 0;\nvar acc = 0;\n"
        src = f"program gen;\nfunc main() {{\n{decls}{chr(10).join(stmts)}\n}}"
        prog = parse(src)
        printed = print_program(prog)
        assert ast_equal(prog, parse(printed))
        assert print_program(parse(printed)) == printed


# ---------------------------------------------------------------------------
# Scheduler determinism
# ---------------------------------------------------------------------------


class TestSchedulerDeterminismProperty:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_same_seed_same_trace(self, seed, ntasks):
        def trace():
            log = []
            sched = Scheduler(seed=seed)
            for t in range(ntasks):
                def gen(name=t):
                    for i in range(4):
                        log.append((name, i))
                        yield Step(1.0)
                sched.spawn(f"t{t}", 0, t, gen())
            sched.run()
            return log

        assert trace() == trace()
