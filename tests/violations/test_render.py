"""Report rendering tests (text with excerpts, JSON)."""

import json

import pytest

from repro.home import check_program
from repro.violations import (
    CONCURRENT_RECV,
    Violation,
    ViolationReport,
    excerpt_at,
    render_report,
    render_violation,
    report_to_dict,
    report_to_json,
)
from repro.workloads.case_studies import CASE_STUDY_2, case_study_2

SOURCE = "line one\nline two\nline three\nline four\n"


class TestExcerpts:
    def test_excerpt_window(self):
        ex = excerpt_at(SOURCE, "2:1", context=1)
        assert [n for n, _ in ex.lines] == [1, 2, 3]
        assert ex.marker_line == 2

    def test_excerpt_at_file_start(self):
        ex = excerpt_at(SOURCE, "1:1", context=2)
        assert ex.lines[0][0] == 1

    def test_excerpt_at_file_end(self):
        ex = excerpt_at(SOURCE, "4:1", context=2)
        assert ex.lines[-1][0] == 4

    def test_out_of_range_returns_none(self):
        assert excerpt_at(SOURCE, "99:1") is None

    def test_malformed_loc_returns_none(self):
        assert excerpt_at(SOURCE, "<unknown>") is None

    def test_marker_in_render(self):
        ex = excerpt_at(SOURCE, "2:1")
        text = ex.render()
        assert "> 2 | line two" in text
        assert "  1 | line one" in text


class TestTextRendering:
    def _report(self):
        return check_program(case_study_2(), nprocs=2)

    def test_render_with_source_shows_offending_lines(self):
        report = self._report()
        text = render_report(report.violations, source=CASE_STUDY_2)
        assert "mpi_recv(a, 1, 1, tag, MPI_COMM_WORLD)" in text
        assert ">" in text

    def test_render_without_source_still_works(self):
        report = self._report()
        text = render_report(report.violations)
        assert "ConcurrentRecvViolation" in text

    def test_render_with_fixes(self):
        report = self._report()
        text = render_report(report.violations, source=CASE_STUDY_2,
                             with_fixes=True)
        assert "fix: disambiguate per-thread traffic" in text

    def test_empty_report(self):
        assert "no thread-safety violations" in render_report(ViolationReport())

    def test_ranks_mentioned(self):
        report = self._report()
        text = render_report(report.violations)
        assert "rank(s) 0" in text and "rank(s) 1" in text

    def test_render_single_violation(self):
        v = Violation(vclass=CONCURRENT_RECV, proc=0, message="m",
                      locs=("2:1",))
        text = render_violation(v, source=SOURCE)
        assert "line two" in text


class TestRaceRendering:
    RACY = """
program t;
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        x = x + 1;
    }
}
"""

    def _candidates(self):
        from repro.analysis.static_.races import find_races
        from repro.minilang import parse

        return find_races(parse(self.RACY)).candidates

    def test_candidates_rendered_with_excerpts(self):
        from repro.violations import render_race_candidates

        text = render_race_candidates(self._candidates(), source=self.RACY)
        assert "static race candidate(s):" in text
        assert "[static-race] x" in text
        assert "x = x + 1" in text and "> " in text

    def test_empty_candidate_list(self):
        from repro.violations import render_race_candidates

        assert "no static race candidates" in render_race_candidates([])

    def test_triage_sections(self):
        from repro.violations import render_race_triage

        triage = {
            "confirmed": [{
                "var": "x", "locs": ["6:9"], "candidates": 2,
                "races": [{"proc": 0, "threads": [0, 1],
                           "callsites": [3, 7]}],
            }],
            "refuted": [],
            "missed_by_dynamic": [{"var": "y", "locs": [], "candidates": 1}],
        }
        text = render_race_triage(triage)
        assert "confirmed by dynamic phase: 1" in text
        assert "x (2 candidate(s) at 6:9)" in text
        assert "observed on rank 0 threads 0/1" in text
        assert "missed by dynamic phase (never multi-threaded): 1" in text


class TestJsonRendering:
    def test_roundtrippable_json(self):
        report = check_program(case_study_2(), nprocs=2)
        data = json.loads(report_to_json(report.violations))
        assert data["count"] == 2
        assert data["classes"] == [CONCURRENT_RECV]
        finding = data["violations"][0]
        assert set(finding) == {
            "class", "message", "locations", "threads", "ops", "ranks",
        }

    def test_empty_report_json(self):
        data = report_to_dict(ViolationReport())
        assert data == {"violations": [], "count": 0, "classes": []}

    def test_ranks_sorted(self):
        report = ViolationReport()
        report.add(Violation(vclass="X", proc=3, message="m", callsites=(1,)))
        report.add(Violation(vclass="X", proc=1, message="m", callsites=(1,)))
        data = report_to_dict(report)
        assert data["violations"][0]["ranks"] == [1, 3]
