"""Violation matcher and report aggregation tests."""

import pytest

from repro.home import check_program
from repro.minilang import parse
from repro.violations import (
    CONCURRENT_RECV,
    Violation,
    ViolationReport,
    extract_thread_level,
    match_violations,
)
from repro.workloads.case_studies import case_study_2


def v(vclass=CONCURRENT_RECV, proc=0, callsites=(1, 2)):
    return Violation(vclass=vclass, proc=proc, message="m", callsites=tuple(callsites))


class TestViolationReport:
    def test_add_and_count(self):
        report = ViolationReport()
        report.add(v())
        assert report.count() == 1
        assert report.count(CONCURRENT_RECV) == 1
        assert report.count("Nope") == 0

    def test_dedup_same_class_and_sites(self):
        report = ViolationReport()
        report.add(v(proc=0))
        report.add(v(proc=1))
        assert len(report) == 1
        key = v().dedup_key()
        assert report.procs_by_finding[key] == [0, 1]

    def test_different_sites_not_deduped(self):
        report = ViolationReport()
        report.add(v(callsites=(1, 2)))
        report.add(v(callsites=(3, 4)))
        assert len(report) == 2

    def test_callsite_order_irrelevant_for_dedup(self):
        report = ViolationReport()
        report.add(v(callsites=(2, 1)))
        report.add(v(callsites=(1, 2)))
        assert len(report) == 1

    def test_by_class(self):
        report = ViolationReport()
        report.add(v())
        report.add(v(vclass="Other", callsites=(9,)))
        assert set(report.by_class()) == {CONCURRENT_RECV, "Other"}

    def test_summary_mentions_ranks(self):
        report = ViolationReport()
        report.add(v(proc=0))
        report.add(v(proc=1))
        assert "ranks 0,1" in report.summary()

    def test_empty_summary(self):
        assert "no thread-safety violations" in ViolationReport().summary()


class TestEndToEndMatching:
    def test_thread_level_extracted_from_log(self):
        report = check_program(case_study_2(), nprocs=2)
        assert extract_thread_level(report.execution.log, 0) == 3

    def test_case_study_2_violations_merged_across_ranks(self):
        report = check_program(case_study_2(), nprocs=2)
        classes = report.violations.classes()
        assert classes == [CONCURRENT_RECV]
        # one finding per rank-side callsite pair
        assert len(report.violations) == 2

    def test_clean_program_empty_report(self):
        src = """
program clean;
func main() {
    var p = mpi_init_thread(MPI_THREAD_MULTIPLE);
    omp parallel num_threads(2) { compute(5); }
    mpi_finalize();
}
"""
        report = check_program(parse(src), nprocs=2)
        assert len(report.violations) == 0
