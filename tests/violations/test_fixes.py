"""Fix suggestions and the verified automatic repair."""

import pytest

from repro.errors import ToolError
from repro.home import check_program
from repro.minilang import parse, print_program
from repro.violations import (
    COLLECTIVE,
    CONCURRENT_RECV,
    CONCURRENT_REQUEST,
    INITIALIZATION,
    PROBE,
    Violation,
)
from repro.violations.fixes import (
    REPAIR_LOCK,
    apply_serializing_fix,
    repair_and_verify,
    suggest_fix,
    suggest_fixes,
)
from repro.workloads.case_studies import case_study_2
from repro.workloads.injection import inject_all, inject_violations


class TestSuggestions:
    @pytest.mark.parametrize("vclass", [
        INITIALIZATION, CONCURRENT_RECV, CONCURRENT_REQUEST, PROBE, COLLECTIVE,
    ])
    def test_every_class_has_a_recipe(self, vclass):
        suggestion = suggest_fix(Violation(vclass=vclass, proc=0, message="m"))
        assert suggestion.vclass == vclass
        assert suggestion.detail

    def test_unknown_class_rejected(self):
        with pytest.raises(ToolError):
            suggest_fix(Violation(vclass="Mystery", proc=0, message="m"))

    def test_recv_fix_mentions_thread_id_tag(self):
        suggestion = suggest_fix(
            Violation(vclass=CONCURRENT_RECV, proc=0, message="m")
        )
        assert "omp_get_thread_num" in suggestion.detail

    def test_suggestions_deduplicated_per_report(self):
        report = check_program(case_study_2(), nprocs=2)
        suggestions = suggest_fixes(report.violations)
        assert [s.vclass for s in suggestions] == [CONCURRENT_RECV]

    def test_auto_fixable_flags(self):
        assert suggest_fix(
            Violation(vclass=CONCURRENT_RECV, proc=0, message="m")
        ).auto_fixable
        assert not suggest_fix(
            Violation(vclass=INITIALIZATION, proc=0, message="m")
        ).auto_fixable


CLEAN = """
program patient;
var data[8];
func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var size = mpi_comm_size(MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        omp for for (var i = 0; i < 8; i = i + 1) {
            data[i] = data[i] + 1.0;
        }
    }
    mpi_finalize();
}
"""


class TestAutomaticRepair:
    def _buggy(self, classes, **kw):
        return inject_violations(parse(CLEAN), classes, **kw).program

    def test_repair_inserts_named_critical(self):
        buggy = self._buggy([CONCURRENT_RECV])
        before = check_program(buggy, nprocs=2)
        repair = apply_serializing_fix(buggy, before.violations)
        assert repair.wrapped_statements >= 1
        assert f"omp critical ({REPAIR_LOCK})" in print_program(repair.program)

    def test_repair_does_not_mutate_original(self):
        buggy = self._buggy([CONCURRENT_RECV])
        snapshot = print_program(buggy)
        before = check_program(buggy, nprocs=2)
        apply_serializing_fix(buggy, before.violations)
        assert print_program(buggy) == snapshot

    @pytest.mark.parametrize("vclass", [
        CONCURRENT_RECV, CONCURRENT_REQUEST, PROBE, COLLECTIVE,
    ])
    def test_repair_then_verify_clean(self, vclass):
        buggy = self._buggy([vclass])
        before, repair, after = repair_and_verify(buggy, nprocs=2)
        assert vclass in before.violations.classes()
        assert vclass not in after.violations.classes()
        assert not after.deadlocked

    def test_repaired_program_still_terminates_across_seeds(self):
        buggy = self._buggy([CONCURRENT_RECV, COLLECTIVE])
        before = check_program(buggy, nprocs=2)
        repair = apply_serializing_fix(buggy, before.violations)
        for seed in range(3):
            report = check_program(repair.program, nprocs=2, seed=seed)
            assert not report.deadlocked

    def test_non_repairable_classes_untouched(self):
        buggy = self._buggy([INITIALIZATION, CONCURRENT_RECV])
        before, repair, after = repair_and_verify(buggy, nprocs=2)
        assert CONCURRENT_RECV not in after.violations.classes()
        # the init-level problem is structural: still reported
        assert INITIALIZATION in before.violations.classes()
        assert INITIALIZATION not in repair.targeted_classes

    def test_repair_with_no_findings_is_identity_like(self):
        clean = parse(CLEAN)
        report = check_program(clean, nprocs=2)
        repair = apply_serializing_fix(clean, report.violations)
        assert repair.wrapped_statements == 0
