"""Violation rules over synthetic and real concurrency reports."""

import pytest

from repro.analysis.dynamic_.hybrid import (
    ConcurrencyReport,
    MPICallRecord,
    RacingPair,
)
from repro.events import EventLog, MPICall
from repro.events.event import MonitoredKind
from repro.mpi.constants import (
    MPI_ANY_SOURCE,
    MPI_ANY_TAG,
    MPI_THREAD_FUNNELED,
    MPI_THREAD_MULTIPLE,
    MPI_THREAD_SERIALIZED,
    MPI_THREAD_SINGLE,
)
from repro.violations import (
    COLLECTIVE,
    CONCURRENT_RECV,
    CONCURRENT_REQUEST,
    FINALIZATION,
    INITIALIZATION,
    PROBE,
    ProcessView,
    check_collective,
    check_concurrent_recv,
    check_concurrent_request,
    check_finalization,
    check_initialization,
    check_probe,
    probed_recv_call_ids,
)

_ids = iter(range(1, 10_000))


def record(op, thread, src=0, tag=5, comm=0, request=None, call_id=None):
    rec = MPICallRecord(
        call_id=call_id if call_id is not None else next(_ids),
        proc=0, thread=thread, op=op,
        callsite=next(_ids), loc=f"{next(_ids)}:1", time=0.0,
    )
    rec.values[MonitoredKind.SRC] = src
    rec.values[MonitoredKind.TAG] = tag
    rec.values[MonitoredKind.COMM] = comm
    rec.writes = {k: next(_ids) for k in rec.values}
    if request is not None:
        rec.values[MonitoredKind.REQUEST] = request
        rec.writes[MonitoredKind.REQUEST] = next(_ids)
    if op.startswith("mpi_barrier") or op in ("mpi_bcast", "mpi_allreduce"):
        rec.values[MonitoredKind.COLLECTIVE] = op
        rec.writes[MonitoredKind.COLLECTIVE] = next(_ids)
    return rec


def pair(a, b, kinds=None):
    if kinds is None:
        kinds = tuple(k for k in a.writes if k in b.writes)
    return RacingPair(a, b, tuple(kinds))


def view(pairs=(), records=(), level=MPI_THREAD_MULTIPLE, calls=(), had_parallel=True):
    report = ConcurrencyReport(0)
    for rec in records:
        report.records[rec.call_id] = rec
    for p in pairs:
        report.records.setdefault(p.a.call_id, p.a)
        report.records.setdefault(p.b.call_id, p.b)
        report.pairs.append(p)
        report.concurrent_kinds.update(p.kinds)
    return ProcessView(
        proc=0, thread_level=level, main_thread=0,
        had_parallel=had_parallel, report=report, calls=list(calls),
    )


def call_event(op, thread=0, time=1.0, is_main=None, args=None):
    return MPICall(
        proc=0, thread=thread, seq=next(_ids), time=time,
        op=op, phase="begin", call_id=next(_ids), callsite=next(_ids),
        loc=f"{next(_ids)}:1",
        is_main_thread=is_main if is_main is not None else (thread == 0),
        args=args or {},
    )


class TestInitializationRule:
    def test_single_non_main_call(self):
        v = view(level=MPI_THREAD_SINGLE,
                 calls=[call_event("mpi_send", thread=3)])
        found = check_initialization(v)
        assert [f.vclass for f in found] == [INITIALIZATION]

    def test_single_with_parallel_region_only(self):
        v = view(level=MPI_THREAD_SINGLE, had_parallel=True)
        assert check_initialization(v)

    def test_single_serial_program_clean(self):
        v = view(level=MPI_THREAD_SINGLE, had_parallel=False,
                 calls=[call_event("mpi_send", thread=0)])
        assert check_initialization(v) == []

    def test_funneled_non_main(self):
        v = view(level=MPI_THREAD_FUNNELED,
                 calls=[call_event("mpi_recv", thread=2)])
        assert check_initialization(v)

    def test_funneled_main_only_clean(self):
        v = view(level=MPI_THREAD_FUNNELED,
                 calls=[call_event("mpi_recv", thread=0)])
        assert check_initialization(v) == []

    def test_serialized_with_concurrency(self):
        p = pair(record("mpi_recv", 1), record("mpi_recv", 2))
        v = view(pairs=[p], level=MPI_THREAD_SERIALIZED)
        assert check_initialization(v)

    def test_serialized_without_concurrency_clean(self):
        v = view(level=MPI_THREAD_SERIALIZED,
                 calls=[call_event("mpi_recv", thread=1)])
        assert check_initialization(v) == []

    def test_multiple_never_fires(self):
        p = pair(record("mpi_recv", 1), record("mpi_recv", 2))
        v = view(pairs=[p], level=MPI_THREAD_MULTIPLE,
                 calls=[call_event("mpi_send", thread=3)])
        assert check_initialization(v) == []

    def test_init_calls_exempt_from_non_main_check(self):
        v = view(level=MPI_THREAD_SINGLE, had_parallel=False,
                 calls=[call_event("mpi_init_thread", thread=1)])
        assert check_initialization(v) == []


class TestFinalizationRule:
    def test_non_main_finalize(self):
        v = view(calls=[call_event("mpi_finalize", thread=2)])
        found = check_finalization(v)
        assert [f.vclass for f in found] == [FINALIZATION]

    def test_main_finalize_clean(self):
        v = view(calls=[call_event("mpi_finalize", thread=0)])
        assert check_finalization(v) == []

    def test_call_after_finalize_on_other_thread(self):
        v = view(calls=[
            call_event("mpi_finalize", thread=0, time=10.0),
            call_event("mpi_send", thread=1, time=20.0),
        ])
        assert check_finalization(v)

    def test_call_before_finalize_clean(self):
        v = view(calls=[
            call_event("mpi_send", thread=1, time=5.0),
            call_event("mpi_finalize", thread=0, time=10.0),
        ])
        assert check_finalization(v) == []

    def test_finalize_race_pair(self):
        fin = record("mpi_finalize", 1)
        fin.values[MonitoredKind.FINALIZE] = 1
        fin.writes[MonitoredKind.FINALIZE] = next(_ids)
        other = record("mpi_send", 2)
        other.values[MonitoredKind.FINALIZE] = 1
        other.writes[MonitoredKind.FINALIZE] = next(_ids)
        p = pair(fin, other, kinds=(MonitoredKind.FINALIZE,))
        v = view(pairs=[p])
        assert check_finalization(v)


class TestConcurrentRecvRule:
    def test_same_envelope_recvs(self):
        p = pair(record("mpi_recv", 1), record("mpi_recv", 2))
        found = check_concurrent_recv(view(pairs=[p]))
        assert [f.vclass for f in found] == [CONCURRENT_RECV]

    def test_distinct_tags_clean(self):
        p = pair(record("mpi_recv", 1, tag=1), record("mpi_recv", 2, tag=2))
        assert check_concurrent_recv(view(pairs=[p])) == []

    def test_distinct_comms_clean(self):
        p = pair(record("mpi_recv", 1, comm=0), record("mpi_recv", 2, comm=1))
        assert check_concurrent_recv(view(pairs=[p])) == []

    def test_wildcard_tag_overlaps(self):
        p = pair(record("mpi_recv", 1, tag=MPI_ANY_TAG), record("mpi_recv", 2, tag=9))
        assert check_concurrent_recv(view(pairs=[p]))

    def test_wildcard_source_overlaps(self):
        p = pair(
            record("mpi_recv", 1, src=MPI_ANY_SOURCE),
            record("mpi_recv", 2, src=3),
        )
        assert check_concurrent_recv(view(pairs=[p]))

    def test_send_pair_not_a_recv_violation(self):
        p = pair(record("mpi_send", 1), record("mpi_send", 2))
        assert check_concurrent_recv(view(pairs=[p])) == []

    def test_irecv_counts_as_recv(self):
        p = pair(record("mpi_irecv", 1, request=5), record("mpi_recv", 2))
        assert check_concurrent_recv(view(pairs=[p]))


class TestConcurrentRequestRule:
    def test_same_request_wait_pair(self):
        a = record("mpi_wait", 1, request=42)
        b = record("mpi_wait", 2, request=42)
        p = pair(a, b, kinds=(MonitoredKind.REQUEST,))
        found = check_concurrent_request(view(pairs=[p]))
        assert [f.vclass for f in found] == [CONCURRENT_REQUEST]

    def test_wait_and_test_mix(self):
        a = record("mpi_wait", 1, request=7)
        b = record("mpi_test", 2, request=7)
        p = pair(a, b, kinds=(MonitoredKind.REQUEST,))
        assert check_concurrent_request(view(pairs=[p]))

    def test_different_requests_clean(self):
        a = record("mpi_wait", 1, request=1)
        b = record("mpi_wait", 2, request=2)
        p = pair(a, b, kinds=(MonitoredKind.REQUEST,))
        assert check_concurrent_request(view(pairs=[p])) == []


class TestProbeRule:
    def test_probe_probe_pair(self):
        p = pair(record("mpi_probe", 1), record("mpi_probe", 2))
        found = check_probe(view(pairs=[p]))
        assert [f.vclass for f in found] == [PROBE]

    def test_iprobe_recv_pair(self):
        p = pair(record("mpi_iprobe", 1), record("mpi_recv", 2))
        assert check_probe(view(pairs=[p]))

    def test_recv_recv_not_probe(self):
        p = pair(record("mpi_recv", 1), record("mpi_recv", 2))
        assert check_probe(view(pairs=[p])) == []

    def test_probe_different_tag_clean(self):
        p = pair(record("mpi_probe", 1, tag=1), record("mpi_probe", 2, tag=2))
        assert check_probe(view(pairs=[p])) == []


class TestCollectiveRule:
    def test_concurrent_barriers(self):
        p = pair(record("mpi_barrier", 1), record("mpi_barrier", 2))
        found = check_collective(view(pairs=[p]))
        assert [f.vclass for f in found] == [COLLECTIVE]

    def test_mixed_collectives_same_comm(self):
        p = pair(record("mpi_barrier", 1), record("mpi_allreduce", 2))
        assert check_collective(view(pairs=[p]))

    def test_different_comms_clean(self):
        p = pair(record("mpi_barrier", 1, comm=0), record("mpi_barrier", 2, comm=1))
        assert check_collective(view(pairs=[p])) == []

    def test_p2p_pair_not_collective(self):
        p = pair(record("mpi_recv", 1), record("mpi_recv", 2))
        assert check_collective(view(pairs=[p])) == []


class TestProbedRecvAttribution:
    def test_recv_after_matching_probe_is_probed(self):
        probe = record("mpi_iprobe", 1, tag=9, call_id=100)
        recv = record("mpi_recv", 1, tag=9, call_id=101)
        v = view(records=[probe, recv])
        assert probed_recv_call_ids(v) == {101}

    def test_recv_without_probe_not_probed(self):
        recv = record("mpi_recv", 1, tag=9, call_id=101)
        v = view(records=[recv])
        assert probed_recv_call_ids(v) == set()

    def test_probe_with_different_envelope_does_not_guard(self):
        probe = record("mpi_iprobe", 1, tag=1, call_id=100)
        recv = record("mpi_recv", 1, tag=2, call_id=101)
        v = view(records=[probe, recv])
        assert probed_recv_call_ids(v) == set()

    def test_probed_recv_pair_excluded_from_recv_rule(self):
        pa = record("mpi_iprobe", 1, tag=9, call_id=100)
        ra = record("mpi_recv", 1, tag=9, call_id=101)
        pb = record("mpi_iprobe", 2, tag=9, call_id=102)
        rb = record("mpi_recv", 2, tag=9, call_id=103)
        recv_pair = pair(ra, rb)
        v = view(pairs=[recv_pair], records=[pa, ra, pb, rb])
        assert check_concurrent_recv(v) == []
        # but an unguarded identical pair does fire
        v2 = view(pairs=[pair(record("mpi_recv", 1, tag=9), record("mpi_recv", 2, tag=9))])
        assert check_concurrent_recv(v2)
