"""HTML report generation tests."""

import pytest

from repro.home import check_program
from repro.violations import ViolationReport, Violation, report_to_html
from repro.workloads.case_studies import CASE_STUDY_2, case_study_2


class TestHtmlReport:
    def _page(self, **kw):
        report = check_program(case_study_2(), nprocs=2)
        return report_to_html(
            report.violations,
            program_name="case_study_2",
            source=CASE_STUDY_2,
            **kw,
        )

    def test_wellformed_document(self):
        page = self._page()
        assert page.startswith("<!DOCTYPE html>")
        assert page.count("<html>") == page.count("</html>") == 1

    def test_findings_rendered(self):
        page = self._page()
        assert "ConcurrentRecvViolation" in page
        assert page.count('class="finding"') == 2

    def test_source_excerpt_with_highlight(self):
        page = self._page()
        assert 'class="hit"' in page
        assert "mpi_recv(a, 1, 1, tag, MPI_COMM_WORLD)" in page

    def test_fix_recipes_included(self):
        assert "disambiguate per-thread traffic" in self._page()

    def test_run_info_rendered(self):
        page = self._page(run_info={"processes": 2, "seed": 0})
        assert "processes=2" in page

    def test_static_info_table(self):
        page = self._page(static_info={"MPI call sites": 9})
        assert "MPI call sites" in page and "<table" in page

    def test_clean_report(self):
        page = report_to_html(ViolationReport(), program_name="ok")
        assert "No thread-safety violations" in page
        assert 'class="finding"' not in page

    def test_html_escaping(self):
        report = ViolationReport()
        report.add(Violation(vclass="X<script>", proc=0,
                             message="a & b < c"))
        page = report_to_html(report)
        assert "<script>" not in page
        assert "X&lt;script&gt;" in page
        assert "a &amp; b &lt; c" in page

    def test_cli_html_flag(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "p.hmp"
        src.write_text(CASE_STUDY_2)
        out = tmp_path / "report.html"
        main(["check", str(src), "--html", str(out)])
        page = out.read_text()
        assert "ConcurrentRecvViolation" in page
        assert "Compile-time phase" in page
