"""Dynamic collective-matching: ledger, trace extraction, rule, render."""

import io

from repro.analysis.dynamic_.hybrid import ConcurrencyReport
from repro.analysis.static_ import find_collective_divergence
from repro.events import CollectiveArrive, dump_log, load_log
from repro.minilang import parse
from repro.mpi.constants import MPI_THREAD_MULTIPLE
from repro.omp.team import CollectiveLedger
from repro.violations import (
    BARRIER_DIVERGENCE,
    COLLECTIVE_ORDER_MISMATCH,
    CollectiveTrace,
    ProcessView,
    check_collective_matching,
    extract_collective_traces,
    render_divergence_candidates,
    render_divergence_triage,
)

from ..helpers import run_src


class TestCollectiveLedger:
    def test_matched_sequences_no_mismatch(self):
        ledger = CollectiveLedger(size=2)
        for member in (0, 1):
            ledger.record(member, "barrier", "3:5")
            ledger.record(member, "single", "4:5")
            ledger.close(member)
        assert ledger.first_mismatch() is None

    def test_color_match_across_different_locs(self):
        # balanced branch arms: same colors, different source lines
        ledger = CollectiveLedger(size=2)
        ledger.record(0, "barrier", "3:9")
        ledger.record(1, "barrier", "5:9")
        ledger.close(0)
        ledger.close(1)
        assert ledger.first_mismatch() is None

    def test_closed_short_member_is_divergence(self):
        ledger = CollectiveLedger(size=2)
        ledger.record(0, "barrier", "3:5")
        ledger.close(0)
        ledger.close(1)
        assert ledger.first_mismatch() == (0, 0, 1)

    def test_open_member_prefix_only(self):
        # member 1 is blocked (deadlock): its missing tail is unknown,
        # not a divergence — but its recorded prefix still compares
        ledger = CollectiveLedger(size=2)
        ledger.record(0, "barrier", "3:5")
        ledger.record(0, "single", "4:5")
        ledger.close(0)
        ledger.record(1, "barrier", "3:5")
        assert ledger.first_mismatch() is None
        ledger.record(1, "mpi", "6:5", "mpi_allreduce")
        assert ledger.first_mismatch() == (1, 0, 1)

    def test_order_mismatch_position(self):
        ledger = CollectiveLedger(size=2)
        ledger.record(0, "barrier", "3:5")
        ledger.record(0, "single", "4:5")
        ledger.record(1, "single", "4:5")
        ledger.record(1, "barrier", "3:5")
        assert ledger.first_mismatch() == (0, 0, 1)


def trace(sequences, closed=None, members=None):
    sequences = tuple(
        tuple((kind, loc, op, 7) for kind, loc, op in seq) for seq in sequences
    )
    if closed is None:
        closed = (True,) * len(sequences)
    if members is None:
        members = tuple(range(len(sequences)))
    return CollectiveTrace(
        team=1, members=members, sequences=sequences, closed=tuple(closed)
    )


def view_with(traces):
    return ProcessView(
        proc=0, thread_level=MPI_THREAD_MULTIPLE, main_thread=0,
        had_parallel=True, report=ConcurrencyReport(0),
        collective_traces=list(traces),
    )


BARRIER = ("barrier", "3:5", "")
BARRIER2 = ("barrier", "9:5", "")
SINGLE = ("single", "4:5", "")
ALLREDUCE = ("mpi", "6:5", "mpi_allreduce")


class TestCheckCollectiveMatching:
    def test_matched_team_clean(self):
        found = check_collective_matching(
            view_with([trace([[BARRIER, SINGLE], [BARRIER, SINGLE]])])
        )
        assert found == []

    def test_balanced_arms_different_locs_clean(self):
        found = check_collective_matching(
            view_with([trace([[BARRIER], [BARRIER2]])])
        )
        assert found == []

    def test_length_mismatch_is_barrier_divergence(self):
        (v,) = check_collective_matching(
            view_with([trace([[BARRIER, ALLREDUCE], [BARRIER]])])
        )
        assert v.vclass == BARRIER_DIVERGENCE
        assert "region end" in v.message
        assert "mpi_allreduce@6:5" in v.message

    def test_order_mismatch_class(self):
        (v,) = check_collective_matching(
            view_with([trace([[BARRIER, SINGLE], [SINGLE, BARRIER]])])
        )
        assert v.vclass == COLLECTIVE_ORDER_MISMATCH

    def test_open_member_short_prefix_not_reported(self):
        found = check_collective_matching(
            view_with([trace([[BARRIER, SINGLE], [BARRIER]],
                             closed=(True, False))])
        )
        assert found == []

    def test_open_member_recorded_prefix_still_compares(self):
        (v,) = check_collective_matching(
            view_with([trace([[BARRIER], [SINGLE]], closed=(True, False))])
        )
        assert v.vclass == COLLECTIVE_ORDER_MISMATCH

    def test_only_first_mismatch_per_trace(self):
        found = check_collective_matching(
            view_with([trace([[SINGLE, BARRIER, ALLREDUCE],
                              [BARRIER, SINGLE, BARRIER]])])
        )
        assert len(found) == 1

    def test_one_violation_per_divergent_team(self):
        found = check_collective_matching(
            view_with([
                trace([[BARRIER], []]),
                trace([[SINGLE], [SINGLE]]),
                trace([[ALLREDUCE], []]),
            ])
        )
        assert len(found) == 2


DIV_BARRIER = """
program t;
func main() {
    omp parallel num_threads(2) {
        var tid = omp_get_thread_num();
        if (tid == 0) {
            omp barrier;
        }
    }
}"""

BALANCED = """
program t;
func main() {
    omp parallel num_threads(2) {
        var tid = omp_get_thread_num();
        if (tid == 0) {
            omp barrier;
        } else {
            omp barrier;
        }
    }
}"""


class TestExtractionFromRealRuns:
    def test_monitoring_off_records_nothing(self):
        result = run_src(BALANCED)
        assert not any(isinstance(e, CollectiveArrive) for e in result.log)
        assert extract_collective_traces(result.log, 0) == []

    def test_balanced_run_completes_and_matches(self):
        result = run_src(BALANCED, monitor_collectives=True)
        assert not result.deadlocked
        (tr,) = extract_collective_traces(result.log, 0)
        assert len(tr.members) == 2
        assert all(tr.closed)
        # both arms: one explicit barrier each, at different locs
        kinds = [tuple(e[0] for e in seq) for seq in tr.sequences]
        assert kinds == [("barrier",), ("barrier",)]
        assert check_collective_matching(view_with([tr])) == []

    def test_deadlocked_run_keeps_master_open(self):
        # the extra master barrier wedges the team, yet the divergence
        # is already on record (arrivals are emitted at encounter)
        result = run_src(DIV_BARRIER, monitor_collectives=True)
        assert result.deadlocked
        (tr,) = extract_collective_traces(result.log, 0)
        assert not all(tr.closed)  # master never joined
        (v,) = check_collective_matching(view_with([tr]))
        assert v.vclass == BARRIER_DIVERGENCE

    def test_collective_arrive_serialize_roundtrip(self):
        result = run_src(DIV_BARRIER, monitor_collectives=True)
        buf = io.StringIO()
        dump_log(result.log, buf)
        buf.seek(0)
        loaded, _meta = load_log(buf)
        originals = [e for e in result.log if isinstance(e, CollectiveArrive)]
        reloaded = [e for e in loaded if isinstance(e, CollectiveArrive)]
        assert originals and originals == reloaded
        (tr,) = extract_collective_traces(loaded, 0)
        assert check_collective_matching(view_with([tr]))


class TestRendering:
    def test_candidates_render_with_excerpts(self):
        report = find_collective_divergence(parse(DIV_BARRIER))
        text = render_divergence_candidates(report.candidates,
                                            source=DIV_BARRIER)
        assert "collective-divergence candidate" in text
        assert "omp barrier" in text  # excerpt pulled from source

    def test_empty_candidates_render(self):
        assert "no collective-divergence" in render_divergence_candidates([])

    def test_triage_render(self):
        triage = {
            "confirmed": [{
                "kind": "barrier-divergence", "func": "main",
                "branch_loc": "5:9", "locs": ["6:13"],
                "violation_classes": [BARRIER_DIVERGENCE],
            }],
            "refuted": [],
        }
        text = render_divergence_triage(triage)
        assert "confirmed by dynamic phase: 1" in text
        assert "barrier-divergence in main (branch at 5:9; sites 6:13)" in text
        assert f"dynamic finding: {BARRIER_DIVERGENCE}" in text
