"""CLI surface: ``repro fuzz`` and hardened error reporting."""

import json

from repro.cli import main

INFINITE_LOOP = """
program spin;
func main() {
    var x = 0;
    while (x < 10) {
        x = x * 1;
    }
}
"""

HUGE_OMP_FOR = """
program hugefor;
func main() {
    omp parallel num_threads(2) {
        omp for
        for (i = 0; i < 1000000000; i = i + 1) {
        }
    }
}
"""


def _deep_program(depth):
    body = "x = 1;"
    for _ in range(depth):
        body = "{ " + body + " }"
    return "program deep;\nfunc main() {\nvar x = 0;\n" + body + "\n}\n"


class TestFuzzCommand:
    def test_smoke_run_clean(self, capsys):
        rc = main(["fuzz", "--seeds", "4", "--jobs-oracle-every", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "divergences: 0" in out
        assert "crashes: 0" in out

    def test_report_and_corpus_written(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        corpus = tmp_path / "corpus"
        rc = main([
            "fuzz", "--seeds", "3", "--no-reduce",
            "--report", str(report), "--corpus", str(corpus),
        ])
        assert rc == 0
        data = json.loads(report.read_text())
        assert data["programs"]["run"] == 3
        assert data["divergences"] == 0
        files = sorted(p.name for p in corpus.iterdir())
        assert files == [
            "seed-00000.mini", "seed-00001.mini", "seed-00002.mini",
        ]
        capsys.readouterr()

    def test_drill_exits_nonzero_and_reports_signature(self, capsys):
        rc = main([
            "fuzz", "--seeds", "3", "--inject", "engine-divergence",
            "--no-reduce",
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "InjectedDivergence" in out

    def test_bad_oracle_name_rejected(self, capsys):
        rc = main(["fuzz", "--oracles", "nonsense"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown oracle(s): nonsense" in err


class TestHardenedDiagnostics:
    """Malformed/pathological inputs become one-line diagnostics (exit 2)."""

    def _run(self, capsys, argv):
        rc = main(argv)
        captured = capsys.readouterr()
        return rc, captured.out, captured.err

    def test_nesting_bomb_is_single_line_parse_error(self, tmp_path, capsys):
        path = tmp_path / "deep.mini"
        path.write_text(_deep_program(400))
        rc, _out, err = self._run(capsys, ["check", str(path)])
        assert rc == 2
        lines = [line for line in err.strip().splitlines() if line]
        assert len(lines) == 1
        assert "nesting too deep (max 200 levels)" in lines[0]
        assert "Traceback" not in err

    def test_infinite_loop_hits_step_budget_one_liner(self, tmp_path, capsys):
        path = tmp_path / "spin.mini"
        path.write_text(INFINITE_LOOP)
        rc, _out, err = self._run(
            capsys, ["run", str(path), "--max-steps", "2000"]
        )
        assert rc == 2
        assert err.count("\n") <= 1
        assert "2000 steps" in err
        assert "Traceback" not in err

    def test_huge_omp_for_refused_up_front(self, tmp_path, capsys):
        path = tmp_path / "huge.mini"
        path.write_text(HUGE_OMP_FOR)
        for engine in ("ast", "bytecode"):
            rc, _out, err = self._run(
                capsys,
                ["run", str(path), "--engine", engine,
                 "--max-steps", "5000"],
            )
            assert rc == 2
            assert "refusing the loop up front" in err
            assert "Traceback" not in err
