"""Crash/finding triage: stable signatures, dedup, reproducers."""

from repro.fuzz.oracles import OracleFinding
from repro.fuzz.triage import (
    Signature,
    TriageBank,
    crash_signature,
    oracle_signature,
)


def _boom():
    raise ValueError("boom")


def _capture():
    try:
        _boom()
    except ValueError as err:
        return err


class TestSignatures:
    def test_crash_signature_keys_on_type_and_frames(self):
        sig_a = crash_signature(_capture())
        sig_b = crash_signature(_capture())
        assert sig_a == sig_b
        assert sig_a.kind == "crash"
        assert sig_a.key.startswith("ValueError@")
        assert "_boom" in sig_a.key

    def test_different_exception_types_differ(self):
        try:
            raise KeyError("k")
        except KeyError as err:
            other = crash_signature(err)
        assert other != crash_signature(_capture())

    def test_oracle_signature_keys_on_oracle_and_detail(self):
        finding = OracleFinding("engine", 3, "trace-mismatch:eof/X", "ev")
        sig = oracle_signature(finding)
        assert sig == Signature("oracle", "engine:trace-mismatch:eof/X")
        assert str(sig) == "oracle:engine:trace-mismatch:eof/X"


class TestBank:
    def test_dedup_counts_and_keeps_first_seed(self):
        bank = TriageBank()
        finding = OracleFinding("engine", 7, "trace-mismatch:eof/X", "ev")
        bank.record_finding(finding, {"seed": 7})
        bank.record_finding(
            OracleFinding("engine", 9, "trace-mismatch:eof/X", "other"),
            {"seed": 9},
        )
        assert len(bank) == 1
        (entry,) = bank.entries.values()
        assert entry.count == 2
        assert entry.first_seed == 7
        assert entry.seeds[:2] == [7, 9]

    def test_distinct_signatures_stay_distinct(self):
        bank = TriageBank()
        bank.record_finding(OracleFinding("engine", 1, "a", ""), {})
        bank.record_finding(OracleFinding("jobs", 1, "a", ""), {})
        assert len(bank) == 2

    def test_crash_recorded_with_reproducer(self):
        bank = TriageBank()
        repro = {"grammar_version": 1, "seed": 4}
        bank.record_crash(4, _capture(), repro)
        (entry,) = bank.entries.values()
        assert entry.reproducer == repro
        assert entry.signature.kind == "crash"

    def test_as_dict_shape(self):
        bank = TriageBank()
        bank.record_finding(OracleFinding("engine", 1, "a", "ev"), {"seed": 1})
        data = bank.as_dict()
        assert data["distinct"] == 1
        assert data["total"] == 1
        (item,) = data["entries"]
        assert item["kind"] == "oracle"
        assert item["signature"] == "engine:a"
        assert item["count"] == 1
