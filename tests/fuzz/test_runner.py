"""End-to-end fuzz campaigns: clean sweep, drill, durability, report."""

import json

from repro.campaign.runner import STATUS_OK
from repro.fuzz.generator import generate_program, program_stmt_count
from repro.fuzz.runner import FuzzConfig, run_fuzz


def _small(**overrides):
    base = dict(seeds=6, jobs_every=1, reduce=False)
    base.update(overrides)
    return FuzzConfig(**base)


class TestCleanSweep:
    def test_clean_corpus_zero_findings(self):
        report = run_fuzz(_small())
        assert report.clean
        assert report.divergences == 0
        assert report.crashes == 0
        assert all(o.status == STATUS_OK for o in report.outcomes)

    def test_report_dict_shape_and_determinism(self):
        first = run_fuzz(_small()).as_dict()
        second = run_fuzz(_small()).as_dict()
        assert first["fuzz_report_version"] == 1
        assert first["programs"]["run"] == 6
        for blob in (first, second):
            blob["throughput"] = None  # wall-clock varies
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_oracle_coverage_reported(self):
        data = run_fuzz(_small()).as_dict()
        for name in ("engine", "jobs", "narrowing", "coherence"):
            assert data["oracles"][name]["ran"] >= 1
            assert data["oracles"][name]["divergences"] == 0


class TestDrill:
    def test_injected_divergence_caught_deduped_and_reduced(self):
        report = run_fuzz(_small(inject="engine-divergence", reduce=True))
        assert not report.clean
        assert report.divergences >= 1
        # dedup: every hit shares one root cause, so exactly one entry
        assert len(report.bank) == 1
        (entry,) = report.bank.entries.values()
        assert entry.signature.kind == "oracle"
        assert "InjectedDivergence" in entry.signature.key
        assert entry.count == report.divergences
        # reproducer pins grammar version + seed + config
        assert entry.reproducer["grammar_version"] == 1
        assert entry.reproducer["seed"] == entry.first_seed
        # automatic reduction: <= 25% of the original statement count
        assert entry.reduced_source is not None
        original = program_stmt_count(generate_program(entry.first_seed))
        assert entry.original_stmts == original
        assert entry.reduced_stmts <= max(3, original // 4)


class TestDurable:
    def test_journaled_run_matches_pool_run(self, tmp_path):
        journal = str(tmp_path / "fuzz.journal")
        durable = run_fuzz(_small(journal=journal))
        plain = run_fuzz(_small())
        assert durable.clean and plain.clean
        assert [o.seed for o in durable.outcomes] == [
            o.seed for o in plain.outcomes
        ]
        assert [o.status for o in durable.outcomes] == [
            o.status for o in plain.outcomes
        ]

    def test_resume_skips_completed_cells(self, tmp_path):
        journal = str(tmp_path / "fuzz.journal")
        run_fuzz(_small(journal=journal))
        resumed = run_fuzz(_small(journal=journal, resume=True))
        assert resumed.clean
        assert len(resumed.outcomes) == 6
