"""Reducer properties: validity, reproduction, 1-minimality, shrinkage."""

import pytest

from repro.fuzz.generator import generate_source
from repro.fuzz.reduce import PASSES, _Session, reduce_source
from repro.minilang import ast_nodes as A
from repro.minilang import parse, validate
from repro.fuzz.generator import program_stmt_count


def _has_critical(source):
    try:
        program = parse(source)
        validate(program)
    except Exception:
        return False
    return any(isinstance(n, A.OmpCritical) for n in program.walk())


class TestReduceSource:
    def test_rejects_non_reproducing_original(self):
        src = generate_source(0)  # seed 0 has no omp critical
        with pytest.raises(ValueError):
            reduce_source(src, _has_critical)

    def test_rejects_unparsable_original(self):
        with pytest.raises(ValueError):
            reduce_source("not a program", _has_critical)

    @pytest.mark.parametrize("seed", [1, 2, 7])
    def test_reduced_program_still_reproduces_and_shrinks(self, seed):
        src = generate_source(seed)
        reduced = reduce_source(src, _has_critical)
        # property 1: the reduced program is valid and still triggers
        assert _has_critical(reduced)
        # property 2: it actually shrank, substantially
        before = program_stmt_count(parse(src))
        after = program_stmt_count(parse(reduced))
        assert after < before
        assert after <= max(4, before // 4)

    @pytest.mark.parametrize("seed", [1, 7])
    def test_one_minimal_with_respect_to_pass_list(self, seed):
        """No single pass can shrink the fixpoint any further."""
        reduced = reduce_source(generate_source(seed), _has_critical)
        session = _Session(_has_critical)
        for name, pass_fn in PASSES:
            assert pass_fn(reduced, session) is None, (
                f"pass {name} still makes progress on the fixpoint"
            )

    def test_idempotent(self):
        reduced = reduce_source(generate_source(1), _has_critical)
        assert reduce_source(reduced, _has_critical) == reduced

    def test_deterministic(self):
        src = generate_source(2)
        assert reduce_source(src, _has_critical) == reduce_source(
            src, _has_critical
        )
