"""The checked-in seed corpus stays in sync with the grammar."""

from pathlib import Path

import pytest

from repro.fuzz.generator import generate_source
from repro.minilang import parse, validate

CORPUS = Path(__file__).resolve().parents[2] / "examples" / "fuzz_corpus"
FILES = sorted(CORPUS.glob("seed-*.mini"))


def test_corpus_is_present():
    assert len(FILES) >= 8


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.name)
def test_corpus_matches_generator(path):
    seed = int(path.stem.split("-")[1])
    assert path.read_text() == generate_source(seed), (
        "grammar output changed: bump GRAMMAR_VERSION and regenerate "
        "examples/fuzz_corpus (see its README)"
    )


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.name)
def test_corpus_parses_and_validates(path):
    validate(parse(path.read_text()))
