"""Generator properties: determinism, validity, coverage of constructs."""

import pytest

from repro.fuzz.generator import (
    GRAMMAR_VERSION,
    GeneratorConfig,
    generate_program,
    generate_source,
    program_stmt_count,
)
from repro.minilang import ast_nodes as A
from repro.minilang import parse, print_program, validate

SEEDS = range(30)


class TestDeterminism:
    def test_same_seed_same_source(self):
        for seed in SEEDS:
            assert generate_source(seed) == generate_source(seed)

    def test_distinct_seeds_vary(self):
        sources = {generate_source(seed) for seed in SEEDS}
        assert len(sources) > len(SEEDS) // 2

    def test_header_records_grammar_version_and_seed(self):
        src = generate_source(7)
        first = src.splitlines()[0]
        assert f"grammar={GRAMMAR_VERSION}" in first
        assert "seed=7" in first

    def test_config_changes_output(self):
        small = GeneratorConfig(max_stmts=4)
        assert generate_source(3, small) != generate_source(3)


class TestValidity:
    @pytest.mark.parametrize("seed", list(SEEDS))
    def test_every_program_parses_and_validates(self, seed):
        program = generate_program(seed)
        assert program_stmt_count(program) > 0

    @pytest.mark.parametrize("seed", [0, 5, 11, 23])
    def test_round_trip(self, seed):
        src = generate_source(seed)
        program = parse(src)
        validate(program)
        again = parse(print_program(program))
        validate(again)


class TestCoverage:
    def test_corpus_exercises_parallel_and_mpi(self):
        kinds = set()
        for seed in range(40):
            program = generate_program(seed)
            for node in program.walk():
                kinds.add(type(node).__name__)
        # the grammar must reach the constructs the oracles stress
        assert "OmpParallel" in kinds
        assert "OmpCritical" in kinds
        assert "OmpFor" in kinds
        # MPI ops appear as calls
        calls = set()
        for seed in range(40):
            for node in generate_program(seed).walk():
                if isinstance(node, A.CallExpr):
                    calls.add(node.name)
        assert any(name.startswith("mpi_") for name in calls)
