"""Oracle harness: clean corpus passes, injected divergence is caught."""

import pytest

from repro.fuzz.generator import generate_program
from repro.fuzz.oracles import ORACLES, OracleContext, run_oracles


def _ctx(**overrides):
    ctx = OracleContext()
    ctx.jobs_every = 1
    for key, value in overrides.items():
        setattr(ctx, key, value)
    return ctx


class TestCleanCorpus:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_all_oracles_silent_on_generated_program(self, seed):
        program = generate_program(seed)
        findings = run_oracles(program, seed, _ctx())
        assert findings == []

    def test_coverage_is_counted(self):
        ctx = _ctx()
        run_oracles(generate_program(0), 0, ctx)
        for name in ORACLES:
            slot = ctx.coverage.get(name, {"ran": 0, "skipped": 0})
            assert slot["ran"] + slot["skipped"] >= 1

    def test_jobs_oracle_sampling(self):
        ctx = _ctx(jobs_every=10)
        for seed in range(3):
            run_oracles(generate_program(seed), seed, ctx)
        slot = ctx.coverage["jobs"]
        # only seed 0 divides evenly
        assert slot["ran"] == 1 and slot["skipped"] == 2

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ValueError):
            run_oracles(generate_program(0), 0, _ctx(), oracles=("bogus",))


class TestInjectedDivergence:
    def test_engine_oracle_catches_injected_trace_event(self):
        # pick a seed whose program contains an omp critical (the drill
        # hook only fires there); seed 1 does by construction
        seed = 1
        ctx = _ctx(inject="engine-divergence")
        findings = run_oracles(generate_program(seed), seed, ctx,
                               oracles=("engine",))
        assert findings, "drill divergence went undetected"
        details = {f.detail for f in findings}
        assert details == {"trace-mismatch:eof/InjectedDivergence"}

    def test_injection_off_means_no_findings(self):
        findings = run_oracles(generate_program(1), 1, _ctx(),
                               oracles=("engine",))
        assert findings == []


class TestEngineAccounting:
    def test_wall_and_steps_recorded_per_engine(self):
        ctx = _ctx()
        run_oracles(generate_program(0), 0, ctx, oracles=("engine",))
        assert set(ctx.engine_steps) == {"ast", "bytecode"}
        # identical programs must schedule identically
        assert ctx.engine_steps["ast"] == ctx.engine_steps["bytecode"]
        assert all(w >= 0 for w in ctx.engine_wall.values())
