"""Divergent NPB variants: collective-divergence injections, their
matched twins, and the divergence-directed narrowing of HOME's
collective monitoring — including the fault-plan no-false-divergence
coverage (thread-downgrade, lock-jitter) and default-trace identity."""

import pytest

from repro.analysis.static_ import run_static_analysis
from repro.analysis.static_.collectives import (
    PRUNE_DIV_BALANCED,
    PRUNE_DIV_SERIAL,
)
from repro.campaign import CampaignConfig, run_campaign
from repro.events import CollectiveArrive
from repro.faults import FaultPlan, builtin_plans
from repro.home import Home
from repro.minilang import validate
from repro.workloads.npb import (
    DIVERGENCE_CLASSES,
    build_lu_mz,
    build_divergent_npb,
    divergent_npb_source,
)


class TestGeneration:
    def test_racy_variant_validates(self):
        prog = build_divergent_npb()
        validate(prog)
        assert prog.name.endswith("_divergent")

    def test_fixed_variant_validates(self):
        prog = build_divergent_npb(fixed=True)
        validate(prog)
        assert prog.name.endswith("_matched")

    def test_injection_registry(self):
        assert len(DIVERGENCE_CLASSES) == 4
        source = divergent_npb_source()
        fixed = divergent_npb_source(fixed=True)
        for fn in ("div_order", "div_single", "div_collective", "div_sync"):
            assert f"func {fn}()" in source and f"func {fn}()" in fixed
        # the matched twin funnels the allreduce through omp master
        assert "omp master" not in source
        assert "omp master" in fixed


class TestStaticDetection:
    def test_racy_variant_reports_all_injections(self):
        report = run_static_analysis(build_divergent_npb())
        coll = report.collectives
        by_func = {(c.kind, c.func) for c in coll.candidates}
        assert by_func == {
            ("collective-order", "div_order"),
            ("barrier-divergence", "div_single"),
            ("mpi-collective", "div_collective"),
            ("barrier-divergence", "div_sync"),
        }

    def test_fixed_variant_reports_zero_candidates(self):
        report = run_static_analysis(build_divergent_npb(fixed=True))
        assert not report.collectives.candidates

    def test_fix_shows_up_as_prunes_not_silence(self):
        coll = run_static_analysis(build_divergent_npb(fixed=True)).collectives
        assert coll.pruned[PRUNE_DIV_BALANCED] >= 1  # balanced div_order arms
        assert coll.pruned[PRUNE_DIV_SERIAL] >= 1    # funneled allreduce


class TestDivergenceDirectedNarrowing:
    @pytest.fixture(scope="class")
    def racy_report(self):
        return Home().check(build_divergent_npb(), nprocs=2, num_threads=2,
                            seed=0)

    @pytest.fixture(scope="class")
    def fixed_report(self):
        return Home().check(build_divergent_npb(fixed=True), nprocs=2,
                            num_threads=2, seed=0)

    def test_candidates_switch_monitoring_on(self, racy_report):
        assert racy_report.execution.config.monitor_collectives
        assert racy_report.extras["divergence_candidates"] == 4
        assert any(
            isinstance(e, CollectiveArrive) for e in racy_report.execution.log
        )

    def test_all_candidates_confirmed(self, racy_report):
        triage = racy_report.extras["divergence_triage"]
        assert len(triage["confirmed"]) == 4
        assert not triage["refuted"]
        confirmed_funcs = {entry["func"] for entry in triage["confirmed"]}
        assert confirmed_funcs == {
            "div_order", "div_single", "div_collective", "div_sync",
        }

    def test_divergent_run_deadlocks_yet_confirms(self, racy_report):
        # div_sync wedges the team — arrivals recorded at encounter
        # still witness the divergence
        assert racy_report.execution.deadlocked
        classes = set(racy_report.violations.classes())
        assert "BarrierDivergenceViolation" in classes
        assert "CollectiveOrderMismatchViolation" in classes

    def test_mpi_collective_case_confirmed_dynamically(self, racy_report):
        triage = racy_report.extras["divergence_triage"]
        (entry,) = [
            e for e in triage["confirmed"] if e["kind"] == "mpi-collective"
        ]
        assert entry["violation_classes"]

    def test_fixed_variant_monitoring_stays_off(self, fixed_report):
        assert not fixed_report.execution.config.monitor_collectives
        assert not any(
            isinstance(e, CollectiveArrive) for e in fixed_report.execution.log
        )
        assert fixed_report.extras["divergence_candidates"] == 0

    def test_fixed_variant_clean(self, fixed_report):
        assert not fixed_report.execution.deadlocked
        for vclass in ("BarrierDivergenceViolation",
                       "CollectiveOrderMismatchViolation", "DataRace"):
            assert vclass not in fixed_report.violations.classes()


DIVERGENCE_CLASSES_DYN = (
    "BarrierDivergenceViolation", "CollectiveOrderMismatchViolation",
)


class TestFaultPlanRobustness:
    """Satellite: fault injection must never manufacture divergence.

    Thread-downgrade and lock-jitter perturb scheduling and thread
    levels but leave every thread's collective *encounter sequence*
    intact, so the matched variant stays clean under both."""

    @pytest.fixture(scope="class")
    def fixed_campaign(self):
        plans = {
            name: builtin_plans(2)[name]
            for name in ("none", "downgrade", "jitter")
        }
        config = CampaignConfig(seeds=[0, 1], plans=plans)
        return run_campaign(build_divergent_npb(fixed=True), config)

    def test_no_divergence_findings_under_faults(self, fixed_campaign):
        classes = set(fixed_campaign.report.classes())
        assert not classes.intersection(DIVERGENCE_CLASSES_DYN)

    def test_no_candidates_means_no_triage_section(self, fixed_campaign):
        assert fixed_campaign.divergence_triage() is None
        assert "divergence_triage" not in fixed_campaign.as_dict()

    def test_racy_campaign_confirms_under_fault_matrix(self):
        plans = {
            name: builtin_plans(2)[name]
            for name in ("none", "downgrade", "jitter")
        }
        result = run_campaign(
            build_divergent_npb(), CampaignConfig(seeds=[0], plans=plans)
        )
        triage = result.divergence_triage()
        assert triage is not None
        assert len(triage["confirmed"]) == 4 and not triage["refuted"]
        assert "collective-divergence triage: 4 confirmed" in result.summary()


class TestDefaultTraceIdentity:
    """Collective monitoring is strictly opt-in: a candidate-free
    program's traces and campaign artifacts are unchanged by the
    feature's presence."""

    def test_clean_program_has_no_collective_events(self):
        report = Home().check(build_lu_mz(), nprocs=2, num_threads=2, seed=0)
        assert not report.execution.config.monitor_collectives
        assert not any(
            isinstance(e, CollectiveArrive) for e in report.execution.log
        )

    def test_empty_plan_campaign_bit_identical_to_none(self):
        prog = build_lu_mz()
        base = run_campaign(prog, CampaignConfig(
            seeds=[0], plans=None, record_timing=False))
        empty = run_campaign(prog, CampaignConfig(
            seeds=[0], plans={"none": FaultPlan(name="none")},
            record_timing=False))
        assert base.as_dict() == empty.as_dict()
        assert [o.events for o in base.outcomes] == [
            o.events for o in empty.outcomes
        ]
