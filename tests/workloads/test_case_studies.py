"""Case-study workload tests (the paper's Figs. 1 and 2)."""

import pytest

from repro.minilang import validate
from repro.runtime import RunConfig, run_program
from repro.workloads.case_studies import (
    case_study_1,
    case_study_2,
    case_study_2_fixed,
    safe_funneled,
)


class TestPrograms:
    @pytest.mark.parametrize("builder", [
        case_study_1, case_study_2, case_study_2_fixed, safe_funneled,
    ])
    def test_validates(self, builder):
        validate(builder())

    def test_case_study_1_uses_plain_init(self):
        src_names = {
            n.name for n in case_study_1().walk() if hasattr(n, "name")
        }
        assert "mpi_init" in src_names and "mpi_init_thread" not in src_names

    def test_case_study_2_requests_multiple(self):
        from repro.analysis.static_ import infer_thread_level
        from repro.mpi.constants import MPI_THREAD_MULTIPLE

        assert infer_thread_level(case_study_2()).declared_level == MPI_THREAD_MULTIPLE


class TestRuntimeBehaviour:
    def test_case_study_1_breaks_under_skip_semantics(self):
        """Under MPI_THREAD_SINGLE only the main thread's call executes
        ('only MPI_Send or MPI_Recv is executed, but not both'), so
        the pairing is broken and the run hangs or strands a message."""
        result = run_program(case_study_1(), RunConfig(nprocs=2, num_threads=2))
        assert result.deadlocked or any(
            "non-main thread" in n for n in result.notes
        )

    def test_case_study_2_terminates_with_buffered_sends(self):
        result = run_program(
            case_study_2(),
            RunConfig(nprocs=2, num_threads=2, thread_level_mode="permissive"),
        )
        assert not result.deadlocked

    def test_case_study_2_fixed_terminates_under_all_seeds(self):
        for seed in range(4):
            result = run_program(
                case_study_2_fixed(),
                RunConfig(nprocs=2, num_threads=2, seed=seed),
            )
            assert not result.deadlocked

    def test_safe_funneled_strict_mode_clean(self):
        result = run_program(
            safe_funneled(),
            RunConfig(nprocs=2, num_threads=2, thread_level_mode="strict"),
        )
        assert not result.deadlocked
        assert result.notes == []
