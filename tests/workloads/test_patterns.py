"""Canonical hybrid patterns: all run clean under every tool."""

import pytest

from repro.baselines import IntelThreadChecker, Marmot
from repro.home import check_program
from repro.minilang import validate
from repro.runtime import RunConfig, run_program
from repro.violations import CONCURRENT_RECV
from repro.workloads.patterns import (
    ALL_PATTERNS,
    halo_ring,
    master_worker,
    ping_pong,
    reduction_tree,
    thread_split_comms,
)


@pytest.mark.parametrize("name", sorted(ALL_PATTERNS))
class TestAllPatterns:
    def test_validates(self, name):
        validate(ALL_PATTERNS[name]())

    def test_terminates(self, name):
        result = run_program(ALL_PATTERNS[name](), RunConfig(nprocs=2, num_threads=2))
        assert not result.deadlocked

    def test_home_reports_clean(self, name):
        report = check_program(ALL_PATTERNS[name](), nprocs=2)
        assert len(report.violations) == 0, report.violations.summary()

    def test_marmot_reports_clean(self, name):
        report = Marmot().check(ALL_PATTERNS[name](), nprocs=2)
        assert len(report.violations) == 0, report.violations.summary()


class TestPatternSpecifics:
    def test_ping_pong_without_thread_tags_is_the_bug(self):
        report = check_program(ping_pong(use_thread_tags=False), nprocs=2)
        assert CONCURRENT_RECV in report.violations.classes()

    def test_thread_split_comms_isolates_traffic(self):
        """The 'distinct communicators' fix from the paper checks clean
        even with identical tags on both threads."""
        report = check_program(thread_split_comms(), nprocs=2)
        assert len(report.violations) == 0

    def test_master_worker_any_source(self):
        result = run_program(master_worker(tasks=4),
                             RunConfig(nprocs=3, num_threads=2))
        assert not result.deadlocked

    def test_halo_ring_scales_to_four_ranks(self):
        result = run_program(halo_ring(), RunConfig(nprocs=4, num_threads=2))
        assert not result.deadlocked

    def test_reduction_tree_assertions_hold(self):
        result = run_program(reduction_tree(), RunConfig(nprocs=2, num_threads=2))
        assert not result.deadlocked
        assert not result.notes  # assert() inside the program passed

    def test_itc_false_positive_free_on_anonymous_sync(self):
        """These patterns synchronize with anonymous criticals / single /
        master, which even the ITC model understands — no DataRace noise."""
        for name in ("halo_ring", "reduction_tree"):
            report = IntelThreadChecker().check(ALL_PATTERNS[name](), nprocs=2)
            assert "DataRace" not in report.violations.classes(), name
