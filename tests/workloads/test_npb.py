"""Mini NPB-MZ benchmark generator and injection registry tests."""

import pytest

from helpers import run_src

from repro.minilang import parse, validate
from repro.violations import (
    COLLECTIVE,
    CONCURRENT_RECV,
    CONCURRENT_REQUEST,
    FINALIZATION,
    INITIALIZATION,
    PROBE,
    Violation,
    ViolationReport,
)
from repro.workloads.npb import (
    BENCHMARKS,
    SPECS,
    build_bt_mz,
    build_lu_mz,
    build_sp_mz,
    injection_registry,
    score_report,
)


@pytest.mark.parametrize("name", ["lu", "bt", "sp"])
class TestGeneration:
    def test_clean_variant_validates(self, name):
        prog = BENCHMARKS[name](inject=False)
        validate(prog)
        assert prog.name.endswith("_mz")

    def test_injected_variant_validates(self, name):
        validate(BENCHMARKS[name](inject=True))

    def test_clean_variant_has_no_inject_functions(self, name):
        prog = BENCHMARKS[name](inject=False)
        assert not any(fn.name.startswith("inject_") for fn in prog.functions)

    def test_injected_variant_has_all_five_inject_functions(self, name):
        prog = BENCHMARKS[name](inject=True)
        inject_fns = {fn.name for fn in prog.functions if fn.name.startswith("inject_")}
        assert inject_fns == {
            "inject_concurrent_recv", "inject_concurrent_request",
            "inject_probe", "inject_collective", "inject_finalize",
        }

    def test_registry_covers_all_six_classes(self, name):
        registry = injection_registry(BENCHMARKS[name](inject=True))
        assert sorted(i.vclass for i in registry) == sorted([
            INITIALIZATION, FINALIZATION, CONCURRENT_RECV,
            CONCURRENT_REQUEST, PROBE, COLLECTIVE,
        ])

    def test_registry_line_ranges_sane(self, name):
        for info in injection_registry(BENCHMARKS[name](inject=True)):
            assert 0 < info.first_line <= info.last_line


@pytest.mark.parametrize("name", ["lu", "bt", "sp"])
class TestExecution:
    def test_clean_benchmark_runs_without_notes(self, name):
        prog = BENCHMARKS[name](inject=False)
        result = run_src.__wrapped__(prog) if hasattr(run_src, "__wrapped__") else None
        from repro.runtime import RunConfig, run_program

        result = run_program(prog, RunConfig(nprocs=2, num_threads=2))
        assert not result.deadlocked
        assert result.notes == []

    def test_injected_benchmark_terminates(self, name):
        from repro.runtime import RunConfig, run_program

        prog = BENCHMARKS[name](inject=True)
        result = run_program(
            prog, RunConfig(nprocs=2, num_threads=2, thread_level_mode="permissive")
        )
        assert not result.deadlocked

    def test_strong_scaling_shrinks_base_time(self, name):
        from repro.runtime import RunConfig, run_program

        prog = BENCHMARKS[name](inject=False)
        t2 = run_program(prog, RunConfig(nprocs=2, num_threads=2)).makespan
        t8 = run_program(prog, RunConfig(nprocs=8, num_threads=2)).makespan
        assert t8 < t2


class TestScoring:
    def _registry(self):
        return injection_registry(build_lu_mz(inject=True))

    def _finding_in(self, info, vclass=CONCURRENT_RECV):
        return Violation(
            vclass=vclass, proc=0, message="m",
            callsites=(1,), locs=(f"{info.first_line}:5",),
        )

    def test_detection_by_location(self):
        registry = self._registry()
        recv_info = next(i for i in registry if i.vclass == CONCURRENT_RECV)
        report = ViolationReport()
        report.add(self._finding_in(recv_info))
        score = score_report(report, registry)
        assert score["detected"] == 1
        assert score["false_positives"] == 0

    def test_initialization_matched_by_class(self):
        registry = self._registry()
        report = ViolationReport()
        report.add(Violation(vclass=INITIALIZATION, proc=0, message="m"))
        score = score_report(report, registry)
        assert score["detected"] == 1

    def test_unattributable_finding_is_false_positive(self):
        registry = self._registry()
        report = ViolationReport()
        report.add(Violation(vclass="DataRace", proc=0, message="m",
                             locs=("99999:1",)))
        score = score_report(report, registry)
        assert score["false_positives"] == 1
        assert score["score"] == 1

    def test_cross_class_detection_counts(self):
        """A tool reporting the probe injection as a recv race still
        counts as having found that injection (ITC's behaviour)."""
        registry = self._registry()
        probe_info = next(i for i in registry if i.vclass == PROBE)
        report = ViolationReport()
        report.add(self._finding_in(probe_info, vclass=CONCURRENT_RECV))
        score = score_report(report, registry)
        assert score["detected"] == 1
        assert score["false_positives"] == 0

    def test_empty_report_all_missed(self):
        registry = self._registry()
        score = score_report(ViolationReport(), registry)
        assert score["detected"] == 0
        assert len(score["missed"]) == 6


class TestSpecKnobs:
    def test_lu_uses_probe_probe_style(self):
        assert SPECS["lu"].probe_style == "probe-probe"
        assert SPECS["bt"].probe_style == "iprobe-recv"
        assert SPECS["sp"].probe_style == "iprobe-recv"

    def test_lu_recv_skewed_bt_sp_not(self):
        assert SPECS["lu"].recv_skew > 0
        assert SPECS["bt"].recv_skew == 0
        assert SPECS["sp"].recv_skew == 0

    def test_sp_request_skewed(self):
        assert SPECS["sp"].request_skew > 0
        assert SPECS["sp"].request_late_delay == 0
        assert SPECS["lu"].request_late_delay > 0

    def test_only_bt_has_named_critical(self):
        assert SPECS["bt"].named_critical_counter
        assert not SPECS["lu"].named_critical_counter
        assert not SPECS["sp"].named_critical_counter
