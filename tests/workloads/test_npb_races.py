"""Racy NPB variants: clause-level race injections, their clause-fixed
twins, and the race-directed narrowing of HOME's memory monitoring."""

import pytest

from repro.analysis.static_ import run_static_analysis
from repro.baselines import IntelThreadChecker
from repro.events import MemAccess
from repro.home import Home
from repro.minilang import validate
from repro.workloads.npb import (
    RACE_CLASSES,
    RACY_VARS,
    SPECS,
    build_racy_npb,
    racy_npb_source,
)


def mem_vars(report):
    return {e.var for e in report.execution.log if type(e) is MemAccess}


@pytest.mark.parametrize("name", ["lu", "bt", "sp"])
class TestGeneration:
    def test_racy_variant_validates(self, name):
        prog = build_racy_npb(SPECS[name])
        validate(prog)
        assert prog.name.endswith("_racy")

    def test_fixed_variant_validates(self, name):
        prog = build_racy_npb(SPECS[name], fixed=True)
        validate(prog)
        assert prog.name.endswith("_fixed")

    def test_injection_count_matches_registry(self, name):
        assert len(RACE_CLASSES) == len(RACY_VARS) == 3
        source = racy_npb_source(SPECS[name])
        fixed = racy_npb_source(SPECS[name], fixed=True)
        assert "reduction(+: local_norm)" not in source
        assert "reduction(+: local_norm)" in fixed
        assert "private(tmp)" not in source
        assert "private(tmp)" in fixed


class TestStaticDetection:
    def test_racy_variant_reports_all_injected_vars(self):
        static = run_static_analysis(build_racy_npb())
        assert static.races is not None
        assert static.races.monitored_vars == frozenset(RACY_VARS)
        # every candidate names both access sites
        for cand in static.races.candidates:
            assert cand.a.loc and cand.b.loc and cand.a.func == cand.b.func

    def test_fixed_variant_reports_zero_candidates(self):
        static = run_static_analysis(build_racy_npb(fixed=True))
        assert static.races is not None
        assert not static.races.candidates
        assert static.races.monitored_vars == frozenset()

    def test_fix_shows_up_as_prunes_not_silence(self):
        # the fixed stencil survives to the subscript test and is
        # proven disjoint there, not dropped earlier
        racy = run_static_analysis(build_racy_npb()).races
        fixed = run_static_analysis(build_racy_npb(fixed=True)).races
        assert fixed.pruned["race-subscript"] > racy.pruned["race-subscript"]

    def test_clean_npb_corpus_stays_quiet(self):
        from repro.workloads.npb import BENCHMARKS

        for build in BENCHMARKS.values():
            static = run_static_analysis(build(inject=True))
            assert not static.races.candidates


class TestRaceDirectedNarrowing:
    @pytest.fixture(scope="class")
    def racy_reports(self):
        prog = build_racy_npb()
        home = Home().check(prog, nprocs=2, num_threads=2, seed=0)
        itc = IntelThreadChecker().check(prog, nprocs=2, num_threads=2, seed=0)
        return home, itc

    @pytest.fixture(scope="class")
    def fixed_reports(self):
        prog = build_racy_npb(fixed=True)
        home = Home().check(prog, nprocs=2, num_threads=2, seed=0)
        itc = IntelThreadChecker().check(prog, nprocs=2, num_threads=2, seed=0)
        return home, itc

    def test_home_monitors_only_candidate_vars(self, racy_reports):
        home, itc = racy_reports
        assert home.execution.config.monitor_memory
        assert mem_vars(home) == set(RACY_VARS)
        assert set(RACY_VARS) < mem_vars(itc)

    def test_home_monitors_strictly_fewer_vars_than_itc(self, fixed_reports):
        home, itc = fixed_reports
        assert not home.execution.config.monitor_memory
        assert mem_vars(home) < mem_vars(itc)

    def test_racy_candidates_confirmed_by_dynamic_phase(self, racy_reports):
        home, _itc = racy_reports
        triage = home.extras["race_triage"]
        confirmed = {entry["var"] for entry in triage["confirmed"]}
        assert confirmed == set(RACY_VARS)
        assert not triage["refuted"]

    def test_confirmed_races_become_violations(self, racy_reports):
        home, _itc = racy_reports
        races = [v for v in home.violations if v.vclass == "DataRace"]
        assert {v.locs for v in races} and len(races) >= len(RACY_VARS)

    def test_fixed_program_has_no_race_findings(self, fixed_reports):
        home, _itc = fixed_reports
        assert not [v for v in home.violations if v.vclass == "DataRace"]
        assert home.extras["monitored_vars"] == []

    def test_monitoring_cost_below_monitor_everything(self, racy_reports):
        home, itc = racy_reports
        home_events = sum(
            1 for e in home.execution.log if type(e) is MemAccess
        )
        itc_events = sum(1 for e in itc.execution.log if type(e) is MemAccess)
        assert 0 < home_events < itc_events
