"""Interprocedural NPB variants: every injected violation hides behind a
two/three-deep helper chain, so only the summary-equipped static phase
sees it — and the funneled twin must stay silent statically and clean
dynamically."""

import pytest

from repro.analysis.static_ import run_static_analysis
from repro.campaign import CampaignConfig, run_campaign
from repro.home import Home
from repro.minilang import validate
from repro.violations.spec import (
    COLLECTIVE,
    CONCURRENT_RECV,
    CONCURRENT_REQUEST,
    FINALIZATION,
    INITIALIZATION,
    PROBE,
)
from repro.workloads.npb import (
    INTERPROC_CLASS_FUNCS,
    build_interproc_npb,
    interproc_npb_source,
    interproc_registry,
    score_report,
)
from repro.workloads.npb.interproc import DATA_RACE

ALL_CLASSES = set(INTERPROC_CLASS_FUNCS) | {INITIALIZATION}


class TestGeneration:
    def test_racy_variant_validates(self):
        prog = build_interproc_npb()
        validate(prog)
        assert prog.name.endswith("_interproc")

    def test_fixed_variant_validates(self):
        prog = build_interproc_npb(fixed=True)
        validate(prog)
        assert prog.name.endswith("_funneled")

    def test_every_chain_present_in_both_variants(self):
        racy = interproc_npb_source()
        fixed = interproc_npb_source(fixed=True)
        for funcs in INTERPROC_CLASS_FUNCS.values():
            for fname in funcs:
                assert f"func {fname}(" in racy
                assert f"func {fname}(" in fixed
        # the funneled twin serializes MPI chains through omp master
        assert "omp master" not in racy
        assert "omp master" in fixed

    def test_registry_spans_whole_chains(self):
        prog = build_interproc_npb()
        registry = interproc_registry(prog)
        assert {info.vclass for info in registry} == ALL_CLASSES
        by_class = {info.vclass: info for info in registry}
        for vclass, funcs in INTERPROC_CLASS_FUNCS.items():
            info = by_class[vclass]
            assert info.func_name == funcs[-1]  # anchored at the entry
            # the leaf's lines are inside the credited range
            for node in prog.function(funcs[0]).walk():
                if node.loc.line > 0:
                    assert info.contains_loc(f"{node.loc.line}:1")


class TestStaticDetection:
    @pytest.fixture(scope="class")
    def racy_report(self):
        return run_static_analysis(build_interproc_npb())

    @pytest.fixture(scope="class")
    def fixed_report(self):
        return run_static_analysis(build_interproc_npb(fixed=True))

    def test_all_mpi_classes_reported_through_chains(self, racy_report):
        classes = {c.vclass for c in racy_report.candidates}
        assert {
            CONCURRENT_RECV, CONCURRENT_REQUEST, PROBE, COLLECTIVE,
            FINALIZATION,
        } <= classes

    def test_race_chain_instantiated_and_monitored(self, racy_report):
        races = racy_report.races
        assert any(c.var == "rdata" for c in races.candidates)
        assert races.instantiated_sites >= 1
        assert "rdata" in races.monitored_vars

    def test_unresolved_shrinks_by_at_least_half(self):
        with_summ = run_static_analysis(build_interproc_npb(), cache=False)
        without = run_static_analysis(
            build_interproc_npb(), summaries=False, cache=False
        )
        before = len(without.races.unresolved)
        after = len(with_summ.races.unresolved)
        assert before >= 2
        assert after <= before // 2  # acceptance: >= 50% reduction
        assert len(with_summ.races.resolved_interproc) == before - after

    def test_lexical_phase_alone_sees_no_race(self):
        report = run_static_analysis(
            build_interproc_npb(), summaries=False, cache=False
        )
        assert not any(c.var == "rdata" for c in report.races.candidates)

    def test_initialization_warning_present(self, racy_report):
        assert any("serialized" in w.kind or "serialized" in w.message
                   for w in racy_report.warnings)

    def test_fixed_variant_statically_silent(self, fixed_report):
        assert not fixed_report.candidates
        assert not fixed_report.races.candidates
        assert not fixed_report.collectives.candidates
        assert not fixed_report.races.unresolved

    def test_fixed_race_chain_proven_disjoint(self):
        # the funneled twin passes the thread id down the chain: the
        # instantiated SIV forms are disjoint, so nothing is monitored
        report = run_static_analysis(build_interproc_npb(fixed=True))
        assert not report.races.monitored_vars


class TestDynamicConfirmation:
    @pytest.fixture(scope="class")
    def racy_report(self):
        return Home().check(
            build_interproc_npb(), nprocs=2, num_threads=2, seed=0
        )

    @pytest.fixture(scope="class")
    def fixed_report(self):
        return Home().check(
            build_interproc_npb(fixed=True), nprocs=2, num_threads=2, seed=0
        )

    def test_every_injection_confirmed(self, racy_report):
        prog = build_interproc_npb()
        score = score_report(racy_report.violations, interproc_registry(prog))
        assert score["missed"] == []
        assert score["detected"] == len(ALL_CLASSES)
        assert score["false_positives"] == 0

    def test_race_confirmed_at_leaf(self, racy_report):
        assert DATA_RACE in racy_report.violations.classes()

    def test_fixed_variant_clean(self, fixed_report):
        assert not fixed_report.execution.deadlocked
        assert not list(fixed_report.violations)

    def test_fixed_variant_completes_both_ranks(self, fixed_report):
        assert fixed_report.execution.config.nprocs == 2


class TestCampaign:
    def test_campaign_over_interproc_workload(self):
        result = run_campaign(
            build_interproc_npb(),
            CampaignConfig(seeds=[0], plans=None),
        )
        classes = set(result.report.classes())
        # every class from the chains shows up under the campaign too
        assert {
            CONCURRENT_RECV, CONCURRENT_REQUEST, PROBE, COLLECTIVE,
            FINALIZATION, INITIALIZATION, DATA_RACE,
        } <= classes
