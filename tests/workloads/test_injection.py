"""General violation-injector tests: graft each class into a clean
program and confirm HOME detects exactly it."""

import pytest

from repro.errors import ToolError
from repro.home import check_program
from repro.minilang import ast_equal, parse, print_program, validate
from repro.violations import (
    COLLECTIVE,
    CONCURRENT_RECV,
    CONCURRENT_REQUEST,
    FINALIZATION,
    INITIALIZATION,
    PROBE,
)
from repro.workloads.injection import (
    INJECTABLE_CLASSES,
    inject_all,
    inject_violations,
)

CLEAN = """
program victim;
var data[16];
func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var size = mpi_comm_size(MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        omp for for (var i = 0; i < 16; i = i + 1) {
            data[i] = data[i] + 1.0;
            compute(1);
        }
    }
    var total = mpi_allreduce(data[0], MPI_SUM, MPI_COMM_WORLD);
    mpi_finalize();
}
"""


def clean_program():
    return parse(CLEAN)


class TestInjectorMechanics:
    def test_original_program_untouched(self):
        prog = clean_program()
        snapshot = print_program(prog)
        inject_all(prog)
        assert print_program(prog) == snapshot

    def test_injected_program_validates_and_prints(self):
        injected = inject_all(clean_program())
        validate(injected.program)
        reparsed = parse(print_program(injected.program))
        assert ast_equal(injected.program, reparsed)

    def test_all_six_classes_injected(self):
        injected = inject_all(clean_program())
        assert sorted(injected.injected) == sorted([
            CONCURRENT_RECV, CONCURRENT_REQUEST, PROBE, COLLECTIVE,
            FINALIZATION, INITIALIZATION,
        ])

    def test_unknown_class_rejected(self):
        with pytest.raises(ToolError, match="cannot inject"):
            inject_violations(clean_program(), ["BogusViolation"])

    def test_requires_rank_and_size(self):
        src = """
program norank;
func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    mpi_finalize();
}
"""
        with pytest.raises(ToolError, match="rank"):
            inject_violations(parse(src), [CONCURRENT_RECV])

    def test_initialization_requires_init_thread(self):
        src = """
program plaininit;
func main() {
    mpi_init();
    mpi_finalize();
}
"""
        with pytest.raises(ToolError, match="mpi_init_thread"):
            inject_violations(parse(src), [INITIALIZATION])

    def test_initialization_downgrades_level(self):
        injected = inject_violations(clean_program(), [INITIALIZATION])
        assert "MPI_THREAD_SERIALIZED" in print_program(injected.program)

    def test_clean_program_checks_clean(self):
        report = check_program(clean_program(), nprocs=2)
        assert len(report.violations) == 0


@pytest.mark.parametrize("vclass,expected", [
    (CONCURRENT_RECV, CONCURRENT_RECV),
    (CONCURRENT_REQUEST, CONCURRENT_REQUEST),
    (PROBE, PROBE),
    (COLLECTIVE, COLLECTIVE),
    (FINALIZATION, FINALIZATION),
])
class TestSingleInjectionDetection:
    def test_home_detects_exactly_the_injected_class(self, vclass, expected):
        injected = inject_violations(clean_program(), [vclass])
        report = check_program(injected.program, nprocs=2)
        classes = set(report.violations.classes())
        assert expected in classes
        # no cross-contamination: the other five classes stay silent
        others = set(INJECTABLE_CLASSES) - {expected, INITIALIZATION}
        assert not (classes & others - {expected})

    def test_injected_program_terminates(self, vclass, expected):
        from repro.runtime import RunConfig, run_program

        injected = inject_violations(clean_program(), [vclass])
        result = run_program(
            injected.program,
            RunConfig(nprocs=2, num_threads=2, thread_level_mode="permissive"),
        )
        assert not result.deadlocked


class TestCombinedInjection:
    def test_all_six_detected_together(self):
        injected = inject_all(clean_program())
        report = check_program(injected.program, nprocs=2)
        assert set(report.violations.classes()) >= {
            CONCURRENT_RECV, CONCURRENT_REQUEST, PROBE, COLLECTIVE,
            FINALIZATION, INITIALIZATION,
        }

    def test_skewed_injection_hides_from_marmot_not_home(self):
        from repro.baselines import Marmot

        injected = inject_violations(
            clean_program(), [CONCURRENT_RECV], skew=300
        )
        home = check_program(injected.program, nprocs=2)
        marmot = Marmot().check(injected.program, nprocs=2)
        assert CONCURRENT_RECV in home.violations.classes()
        assert CONCURRENT_RECV not in marmot.violations.classes()

    def test_four_process_run(self):
        injected = inject_all(clean_program())
        report = check_program(injected.program, nprocs=4)
        assert CONCURRENT_RECV in report.violations.classes()
