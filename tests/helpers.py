"""Shared test helpers: compact program sources and run wrappers."""

from __future__ import annotations

from repro.minilang import parse, validate
from repro.runtime import RunConfig, run_program


def run_src(source: str, nprocs: int = 1, threads: int = 2, seed: int = 0, **kw):
    """Parse, validate and execute mini-language source; return the result."""
    program = parse(source)
    validate(program)
    config = RunConfig(nprocs=nprocs, num_threads=threads, seed=seed, **kw)
    return run_program(program, config)


def outputs_of(result):
    return result.printed_lines()


def wrap_main(body: str, globals_: str = "") -> str:
    """Wrap statements into a single-function program."""
    return f"""
program t;
{globals_}
func main() {{
{body}
}}
"""


def run_main(body: str, globals_: str = "", **kw):
    return run_src(wrap_main(body, globals_), **kw)


MPI_PAIR_HEADER = """
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var size = mpi_comm_size(MPI_COMM_WORLD);
"""
