"""End-to-end determinism: same inputs, bit-identical outcomes.

Everything the harness reports — virtual times, event streams,
violation findings — must be a pure function of (program, config).
"""

import pytest

from repro.baselines import IntelThreadChecker, Marmot
from repro.home import check_program
from repro.runtime import RunConfig, run_program
from repro.workloads.case_studies import case_study_2
from repro.workloads.npb import build_lu_mz


def fingerprint(result):
    return (
        result.makespan,
        tuple(sorted(result.proc_clocks.items())),
        tuple((type(e).__name__, e.proc, e.thread, e.seq, e.time) for e in result.log),
        tuple(result.outputs),
        tuple(result.notes),
    )


class TestRunDeterminism:
    def test_identical_runs_identical_traces(self):
        prog_a, prog_b = case_study_2(), case_study_2()
        ra = run_program(prog_a, RunConfig(nprocs=2, seed=5, thread_level_mode="permissive"))
        rb = run_program(prog_b, RunConfig(nprocs=2, seed=5, thread_level_mode="permissive"))
        assert fingerprint(ra) == fingerprint(rb)

    def test_different_seeds_may_differ_in_order_not_verdict(self):
        makespans = set()
        for seed in range(3):
            r = run_program(
                case_study_2(),
                RunConfig(nprocs=2, seed=seed, thread_level_mode="permissive"),
            )
            makespans.add(r.makespan)
        # virtual time is schedule-independent for this program shape:
        # all costs are charged per-thread, so makespan coincides
        assert len(makespans) >= 1

    def test_npb_run_deterministic(self):
        ra = run_program(build_lu_mz(inject=True),
                         RunConfig(nprocs=4, seed=1, thread_level_mode="permissive"))
        rb = run_program(build_lu_mz(inject=True),
                         RunConfig(nprocs=4, seed=1, thread_level_mode="permissive"))
        assert fingerprint(ra) == fingerprint(rb)


class TestToolDeterminism:
    def _violation_keys(self, report):
        return sorted(
            (v.vclass, v.proc, v.locs) for v in report.violations
        )

    def test_home_verdicts_reproducible(self):
        a = check_program(case_study_2(), nprocs=2, seed=7)
        b = check_program(case_study_2(), nprocs=2, seed=7)
        assert a.makespan == b.makespan
        assert self._violation_keys(a) == self._violation_keys(b)

    def test_marmot_verdicts_reproducible(self):
        a = Marmot().check(build_lu_mz(inject=True), nprocs=2, seed=0)
        b = Marmot().check(build_lu_mz(inject=True), nprocs=2, seed=0)
        assert self._violation_keys(a) == self._violation_keys(b)

    def test_itc_verdicts_reproducible(self):
        a = IntelThreadChecker().check(case_study_2(), nprocs=2, seed=3)
        b = IntelThreadChecker().check(case_study_2(), nprocs=2, seed=3)
        assert self._violation_keys(a) == self._violation_keys(b)

    def test_home_verdict_stable_across_seeds(self):
        """HOME's hybrid analysis detects potential races regardless of
        which interleaving actually ran — the verdict set is seed-stable."""
        verdicts = {
            tuple(sorted(check_program(case_study_2(), nprocs=2, seed=s)
                         .violations.classes()))
            for s in range(5)
        }
        assert len(verdicts) == 1
