"""CLI tests (argument parsing and end-to-end subcommands)."""

import pytest

from repro.cli import main

TINY_RACY = """
program tiny;
var a[2];
func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var partner = 1 - rank;
    mpi_send(a, 1, partner, 5, MPI_COMM_WORLD);
    mpi_send(a, 1, partner, 5, MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        mpi_recv(a, 1, partner, 5, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
"""

TINY_CLEAN = """
program clean;
func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    omp parallel num_threads(2) { compute(2); }
    print("ok");
    mpi_finalize();
}
"""


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.hmp"
    path.write_text(TINY_RACY)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.hmp"
    path.write_text(TINY_CLEAN)
    return str(path)


class TestCheck:
    def test_check_racy_exits_nonzero(self, racy_file, capsys):
        code = main(["check", racy_file, "--procs", "2"])
        out = capsys.readouterr().out
        assert code == 1
        assert "ConcurrentRecvViolation" in out

    def test_check_clean_exits_zero(self, clean_file, capsys):
        code = main(["check", clean_file, "--procs", "2"])
        assert code == 0
        assert "no thread-safety violations" in capsys.readouterr().out

    @pytest.mark.parametrize("tool", ["home", "marmot", "itc", "base"])
    def test_all_tools_selectable(self, clean_file, tool, capsys):
        assert main(["check", clean_file, "--tool", tool]) == 0

    def test_verbose_flag(self, racy_file, capsys):
        main(["check", racy_file, "-v"])
        # verbose output at minimum doesn't crash and prints the summary
        assert "HOME" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["check", "/nonexistent/prog.hmp"]) == 2

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.hmp"
        bad.write_text("program p;\nfunc main() { var = ; }")
        assert main(["check", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_parse_error_is_single_file_line_col_diagnostic(self, tmp_path,
                                                            capsys):
        bad = tmp_path / "bad.hmp"
        bad.write_text("program p;\nfunc main() { var = ; }")
        assert main(["check", str(bad)]) == 2
        err = capsys.readouterr().err.strip()
        # one grep-able compiler-style line: file:line:col: error: message
        assert len(err.splitlines()) == 1
        assert err.startswith(f"{bad}:2:")
        prefix, _, rest = err.partition(": error: ")
        path, line, col = prefix.rsplit(":", 2)
        assert (path, line) == (str(bad), "2")
        assert col.isdigit() and rest


class TestStatic:
    def test_static_reports_sites(self, racy_file, capsys):
        main(["static", racy_file])
        out = capsys.readouterr().out
        assert "MPI call sites" in out

    def test_static_dump_prints_instrumented_source(self, racy_file, capsys):
        main(["static", racy_file, "--dump"])
        out = capsys.readouterr().out
        assert "hmpi_recv" in out


OMP_RACY = """
program omprace;
func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var total = 0;
    omp parallel num_threads(2) {
        total = total + 1;
    }
    mpi_finalize();
}
"""


class TestStaticRaces:
    @pytest.fixture
    def omp_racy_file(self, tmp_path):
        path = tmp_path / "omprace.hmp"
        path.write_text(OMP_RACY)
        return str(path)

    def test_static_text_shows_candidates_and_prunes(self, omp_racy_file, capsys):
        main(["static", omp_racy_file])
        out = capsys.readouterr().out
        assert "static race candidates: 2" in out
        assert "[static-race] total" in out
        assert "> " in out  # source excerpt at the racing line
        assert "prune counters:" in out
        # dataflow and race prune counters land in the same block
        for kind in ("envelope", "lockstate", "mhp", "race-mhp", "race-lock"):
            assert f"{kind}:" in out

    def test_static_json_includes_races_and_prunes(self, omp_racy_file, capsys):
        import json

        main(["static", omp_racy_file, "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data["races"]["monitored_vars"] == ["total"]
        (cand,) = [
            c for c in data["races"]["candidates"]
            if (c["a"]["kind"], c["b"]["kind"]) == ("write", "write")
        ]
        assert cand["var"] == "total"
        assert cand["a"]["loc"] and cand["b"]["loc"]
        # v3: one uniform `prunes` section with per-pass sub-dicts
        prunes = data["prunes"]
        assert set(prunes) == {"dataflow", "races", "collectives", "total"}
        assert set(prunes["dataflow"]) >= {"envelope", "lockstate", "mhp"}
        assert "race-mhp" in prunes["races"]
        assert set(prunes["collectives"]) >= {"div-uniform", "div-serial"}
        assert prunes["total"] == sum(
            n for sec in ("dataflow", "races", "collectives")
            for n in prunes[sec].values()
        )
        assert data["schema_version"] == 3
        assert data["interproc"] is not None

    def test_static_no_races_flag(self, omp_racy_file, capsys):
        main(["static", omp_racy_file, "--no-races"])
        out = capsys.readouterr().out
        assert "static race candidates" not in out

    def test_check_verbose_prints_triage(self, omp_racy_file, capsys):
        code = main(["check", omp_racy_file, "-v"])
        out = capsys.readouterr().out
        assert code == 1
        assert "race-directed monitoring: total" in out
        assert "static race triage:" in out
        assert "confirmed by dynamic phase: 1" in out

    def test_clean_program_keeps_monitoring_off(self, clean_file, capsys):
        main(["check", clean_file, "-v"])
        out = capsys.readouterr().out
        assert "race-directed monitoring" not in out


class TestRun:
    def test_run_prints_program_output(self, clean_file, capsys):
        code = main(["run", clean_file, "--procs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[rank 0.t0] ok" in out

    def test_run_deadlock_exit_code(self, tmp_path, capsys):
        src = """
program dl;
var a[1];
func main() {
    mpi_init();
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    if (rank == 0) { mpi_recv(a, 1, 1, 1, MPI_COMM_WORLD); }
}
"""
        path = tmp_path / "dl.hmp"
        path.write_text(src)
        assert main(["run", str(path), "--procs", "2"]) == 2
        assert "DEADLOCK" in capsys.readouterr().out


class TestFigureAndDemo:
    def test_figure_4_reduced_sweep(self, capsys):
        code = main(["figure", "4", "--proc-list", "2", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "LU-MZ" in out and "HOME" in out

    def test_figure_7_reduced_sweep(self, capsys):
        code = main(["figure", "7", "--proc-list", "2", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "overhead" in out

    def test_demo_runs_case_studies(self, capsys):
        code = main(["demo"])
        out = capsys.readouterr().out
        assert code == 0
        assert "case_study_1" in out and "case_study_2" in out


class TestRenderingFlags:
    def test_excerpts_flag(self, racy_file, capsys):
        main(["check", racy_file, "--excerpts"])
        out = capsys.readouterr().out
        assert "> " in out and "mpi_recv" in out

    def test_json_format(self, racy_file, capsys):
        import json

        code = main(["check", racy_file, "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 1
        assert data["count"] >= 1
        assert data["classes"] == ["ConcurrentRecvViolation"]

    def test_fix_hints_flag(self, racy_file, capsys):
        main(["check", racy_file, "--fix-hints"])
        assert "suggested fixes" in capsys.readouterr().out

    def test_save_and_analyze_trace(self, racy_file, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        main(["check", racy_file, "--save-trace", str(trace)])
        capsys.readouterr()
        code = main(["analyze", str(trace)])
        out = capsys.readouterr().out
        assert code == 1
        assert "ConcurrentRecvViolation" in out

    def test_analyze_with_degraded_detector(self, racy_file, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        main(["check", racy_file, "--save-trace", str(trace)])
        capsys.readouterr()
        code = main(["analyze", str(trace), "--no-lockset", "--no-lock-edges"])
        out = capsys.readouterr().out
        assert "ConcurrentRecvViolation" in out


class TestFixSubcommand:
    def test_fix_writes_verified_program(self, racy_file, tmp_path, capsys):
        out = tmp_path / "fixed.hmp"
        code = main(["fix", racy_file, "-o", str(out)])
        text = capsys.readouterr().out
        assert code == 0
        assert "after:  0 finding(s)" in text
        assert "omp critical (home_repair)" in out.read_text()
        # the written program checks clean
        capsys.readouterr()
        assert main(["check", str(out)]) == 0

    def test_fix_on_clean_program(self, clean_file, capsys):
        code = main(["fix", clean_file])
        assert code == 0
        assert "nothing to fix" in capsys.readouterr().out


FUNNELED_RACY = """
program funneled;
var a[2];
func main() {
    var provided = mpi_init_thread(MPI_THREAD_FUNNELED);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var partner = 1 - rank;
    mpi_send(a, 1, partner, 5, MPI_COMM_WORLD);
    mpi_send(a, 1, partner, 5, MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        mpi_recv(a, 1, partner, 5, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
"""


class TestThreadLevelMode:
    """End-to-end ``--thread-level-mode`` coverage through ``check``."""

    @pytest.fixture
    def funneled_file(self, tmp_path):
        path = tmp_path / "funneled.hmp"
        path.write_text(FUNNELED_RACY)
        return str(path)

    def test_permissive_executes_breaching_calls(self, funneled_file, capsys):
        code = main(["check", funneled_file,
                     "--thread-level-mode", "permissive", "-v"])
        out = capsys.readouterr().out
        assert code == 1
        assert "InitializationViolation" in out
        assert "ConcurrentRecvViolation" in out
        assert "non-main thread" in out
        assert "aborted" not in out

    def test_strict_aborts_breaching_thread(self, funneled_file, capsys):
        code = main(["check", funneled_file,
                     "--thread-level-mode", "strict", "-v"])
        out = capsys.readouterr().out
        assert code == 1
        # the offending thread dies like under a strict MPI library...
        assert "aborted" in out
        # ...but the wrapper writes landed first, so HOME still reports
        assert "ConcurrentRecvViolation" in out

    def test_skip_mode_accepted(self, funneled_file, capsys):
        code = main(["check", funneled_file, "--thread-level-mode", "skip"])
        assert code == 1
        assert "ConcurrentRecvViolation" in capsys.readouterr().out

    def test_default_mode_unchanged(self, funneled_file, capsys):
        """No flag: the tool's own default (permissive) applies."""
        code = main(["check", funneled_file, "-v"])
        out = capsys.readouterr().out
        assert code == 1
        assert "aborted" not in out

    def test_invalid_mode_rejected(self, funneled_file):
        with pytest.raises(SystemExit):
            main(["check", funneled_file, "--thread-level-mode", "bogus"])


class TestCampaignCommand:
    def test_campaign_over_file(self, racy_file, capsys):
        code = main(["campaign", racy_file, "--seeds", "2",
                     "--plans", "none,crash"])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 run(s)" in out
        assert "ConcurrentRecvViolation" in out

    def test_campaign_force_fail_degrades(self, racy_file, capsys):
        code = main(["campaign", racy_file, "--seeds", "2", "--force-fail"])
        out = capsys.readouterr().out
        assert code == 1
        assert "DEGRADED REPORT" in out
        assert "STATIC-ONLY" in out

    def test_campaign_json_and_checkpoint(self, racy_file, tmp_path, capsys):
        import json

        report = tmp_path / "r.json"
        ckpt = tmp_path / "c.json"
        code = main(["campaign", racy_file, "--seeds", "2", "--plans", "none",
                     "--json", str(report), "--checkpoint", str(ckpt)])
        assert code == 0
        data = json.loads(report.read_text())
        assert data["runs"] == 2 and not data["degraded"]
        state = json.loads(ckpt.read_text())
        assert state["format"] == "repro-campaign"
        assert len(state["outcomes"]) == 2

    def test_campaign_resume_from_checkpoint(self, racy_file, tmp_path, capsys):
        ckpt = str(tmp_path / "c.json")
        main(["campaign", racy_file, "--seeds", "2", "--plans", "none",
              "--checkpoint", ckpt])
        capsys.readouterr()
        code = main(["campaign", racy_file, "--seeds", "2", "--plans", "none",
                     "--checkpoint", ckpt, "--resume", "-v"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("(resumed)") == 2

    def test_campaign_npb_smoke(self, capsys):
        code = main(["campaign", "--npb", "lu", "--seeds", "1",
                     "--plans", "downgrade", "--budget-steps", "200000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "InitializationViolation" in out

    def test_unknown_plan_is_config_error(self, racy_file, capsys):
        code = main(["campaign", racy_file, "--plans", "gremlins"])
        assert code == 2
        assert "unknown fault plan" in capsys.readouterr().err

    def test_file_and_npb_mutually_exclusive(self, racy_file, capsys):
        assert main(["campaign", racy_file, "--npb", "lu"]) == 2
        assert main(["campaign"]) == 2


class TestMessageRaceFlag:
    def test_msg_races_reported(self, tmp_path, capsys):
        src = tmp_path / "wild.hmp"
        src.write_text("""
program wild;
var buf[1];
func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    if (rank == 1) { mpi_send(buf, 1, 0, 5, MPI_COMM_WORLD); }
    if (rank == 2) { mpi_send(buf, 1, 0, 5, MPI_COMM_WORLD); }
    if (rank == 0) {
        mpi_recv(buf, 1, MPI_ANY_SOURCE, 5, MPI_COMM_WORLD);
        mpi_recv(buf, 1, MPI_ANY_SOURCE, 5, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
""")
        main(["check", str(src), "--procs", "3", "--msg-races"])
        out = capsys.readouterr().out
        assert "MessageRace" in out

    def test_no_msg_races_on_clean(self, clean_file, capsys):
        main(["check", clean_file, "--msg-races"])
        assert "no nondeterministic message matches" in capsys.readouterr().out


OMP_DIVERGENT = """
program divcli;
func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    omp parallel num_threads(2) {
        var tid = omp_get_thread_num();
        if (tid > 0) {
            omp single nowait { compute(1); }
        }
    }
    mpi_finalize();
}
"""


class TestStaticCollectives:
    @pytest.fixture
    def divergent_file(self, tmp_path):
        path = tmp_path / "divergent.hmp"
        path.write_text(OMP_DIVERGENT)
        return str(path)

    def test_static_text_shows_divergence_candidates(self, divergent_file,
                                                     capsys):
        main(["static", divergent_file])
        out = capsys.readouterr().out
        assert "collective-divergence candidate" in out
        assert "barrier-divergence" in out
        assert "omp single nowait" in out  # source excerpt at the site

    def test_static_no_collectives_flag(self, divergent_file, capsys):
        main(["static", divergent_file, "--no-collectives"])
        out = capsys.readouterr().out
        assert "collective-divergence" not in out

    def test_static_json_has_collectives_section(self, divergent_file, capsys):
        import json

        main(["static", divergent_file, "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data["collectives"]["candidate_count"] == 1
        assert data["collectives"]["monitored_locs"]

    def test_check_verbose_prints_divergence_triage(self, divergent_file,
                                                    capsys):
        code = main(["check", divergent_file, "-v"])
        out = capsys.readouterr().out
        assert code == 1
        assert "collective-divergence triage:" in out
        assert "confirmed by dynamic phase: 1" in out
        assert "BarrierDivergenceViolation" in out

    def test_campaign_npb_div_confirms(self, capsys):
        code = main(["campaign", "--npb", "div", "--seeds", "1",
                     "--plans", "none"])
        out = capsys.readouterr().out
        assert code == 0
        assert "collective-divergence triage: 4 confirmed, 0 refuted" in out
        assert "BarrierDivergenceViolation" in out

    def test_campaign_npb_div_clean_stays_quiet(self, capsys):
        code = main(["campaign", "--npb", "div", "--clean", "--seeds", "1",
                     "--plans", "none"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no thread-safety violations detected" in out
