"""Tests for the extended MPI surface: ssend, sendrecv, waitall."""

import pytest

from helpers import MPI_PAIR_HEADER, run_src, wrap_main


def run_pair(body, nprocs=2, **kw):
    return run_src(wrap_main(MPI_PAIR_HEADER + body), nprocs=nprocs, **kw)


class TestSsend:
    def test_ssend_blocks_until_matched(self):
        body = """
    var buf[1];
    if (rank == 0) {
        mpi_ssend(buf, 1, 1, 5, MPI_COMM_WORLD);
        print("after", mpi_wtime() > 500);
    }
    if (rank == 1) {
        compute(100);
        mpi_recv(buf, 1, 0, 5, MPI_COMM_WORLD);
    }
    mpi_finalize();
"""
        assert run_pair(body).printed_lines() == ["after True"]

    def test_unmatched_ssend_deadlocks(self):
        body = """
    var buf[1];
    if (rank == 0) { mpi_ssend(buf, 1, 1, 5, MPI_COMM_WORLD); }
    mpi_finalize();
"""
        assert run_pair(body).deadlocked

    def test_ssend_payload(self):
        body = """
    var buf[1];
    if (rank == 0) { buf[0] = 3; mpi_ssend(buf, 1, 1, 5, MPI_COMM_WORLD); }
    if (rank == 1) { mpi_recv(buf, 1, 0, 5, MPI_COMM_WORLD); print(buf[0]); }
    mpi_finalize();
"""
        assert run_pair(body).printed_lines() == ["3.0"]


class TestSendrecv:
    def test_ring_exchange_does_not_deadlock(self):
        body = """
    var sendbuf[1];
    var recvbuf[1];
    sendbuf[0] = rank;
    var right = (rank + 1) % size;
    var left = (rank + size - 1) % size;
    mpi_sendrecv(sendbuf, 1, right, 3, recvbuf, left, 3, MPI_COMM_WORLD);
    print(recvbuf[0]);
    mpi_finalize();
"""
        result = run_pair(body, nprocs=4)
        assert not result.deadlocked
        assert sorted(result.printed_lines()) == ["0.0", "1.0", "2.0", "3.0"]

    def test_sendrecv_returns_matched_source(self):
        body = """
    var s[1];
    var r[1];
    var partner = 1 - rank;
    print(mpi_sendrecv(s, 1, partner, 3, r, partner, 3, MPI_COMM_WORLD));
    mpi_finalize();
"""
        result = run_pair(body)
        assert sorted(result.printed_lines()) == ["0", "1"]

    def test_sendrecv_wrong_arity(self):
        body = """
    var s[1];
    mpi_sendrecv(s, 1, 0, 3, MPI_COMM_WORLD);
"""
        result = run_pair(body, nprocs=1)
        assert any("mpi_sendrecv expects" in n for n in result.notes)


class TestWaitall:
    def test_waitall_completes_multiple_requests(self):
        body = """
    var b1[1];
    var b2[1];
    var partner = 1 - rank;
    b1[0] = 10 + rank;
    mpi_send(b1, 1, partner, 1, MPI_COMM_WORLD);
    mpi_send(b1, 1, partner, 2, MPI_COMM_WORLD);
    var r1 = mpi_irecv(b1, 1, partner, 1, MPI_COMM_WORLD);
    var r2 = mpi_irecv(b2, 1, partner, 2, MPI_COMM_WORLD);
    mpi_waitall(r1, r2);
    print(b1[0], b2[0]);
    mpi_finalize();
"""
        result = run_pair(body)
        assert sorted(result.printed_lines()) == ["10.0 10.0", "11.0 11.0"]

    def test_waitall_on_freed_request_noted(self):
        body = """
    var b[1];
    var partner = 1 - rank;
    mpi_send(b, 1, partner, 1, MPI_COMM_WORLD);
    var r = mpi_irecv(b, 1, partner, 1, MPI_COMM_WORLD);
    mpi_wait(r);
    mpi_waitall(r);
    mpi_finalize();
"""
        result = run_pair(body)
        assert any("mpi_waitall on unknown/freed" in n for n in result.notes)


class TestViolationIntegration:
    def test_concurrent_sendrecv_flagged_as_recv_violation(self):
        from repro.home import check_program
        from repro.minilang import parse
        from repro.violations import CONCURRENT_RECV

        src = wrap_main(MPI_PAIR_HEADER + """
    var s[1];
    var r[1];
    var partner = 1 - rank;
    omp parallel num_threads(2) {
        mpi_sendrecv(s, 1, partner, 3, r, partner, 3, MPI_COMM_WORLD);
    }
    mpi_finalize();
""")
        report = check_program(parse(src), nprocs=2)
        assert CONCURRENT_RECV in report.violations.classes()

    def test_concurrent_waitall_flagged_as_request_violation(self):
        from repro.home import check_program
        from repro.minilang import parse
        from repro.violations import CONCURRENT_REQUEST

        src = wrap_main(MPI_PAIR_HEADER + """
    var b[1];
    var partner = 1 - rank;
    compute(50);
    mpi_send(b, 1, partner, 1, MPI_COMM_WORLD);
    var r = mpi_irecv(b, 1, partner, 1, MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        mpi_waitall(r);
    }
    mpi_finalize();
""")
        report = check_program(parse(src), nprocs=2)
        assert CONCURRENT_REQUEST in report.violations.classes()
