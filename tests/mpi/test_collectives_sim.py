"""Collective operations through the interpreter."""

import pytest

from helpers import MPI_PAIR_HEADER, run_src, wrap_main


def run_world(body, nprocs=4, **kw):
    return run_src(wrap_main(MPI_PAIR_HEADER + body), nprocs=nprocs, **kw)


class TestBarrier:
    def test_barrier_synchronizes_clocks(self):
        body = """
    if (rank == 0) { compute(100); }
    mpi_barrier(MPI_COMM_WORLD);
    print(mpi_wtime() >= 1000);
    mpi_finalize();
"""
        result = run_world(body, nprocs=3)
        assert result.printed_lines() == ["True"] * 3

    def test_unbalanced_barrier_deadlocks(self):
        body = """
    if (rank == 0) { mpi_barrier(MPI_COMM_WORLD); }
    mpi_finalize();
"""
        result = run_world(body, nprocs=2)
        assert result.deadlocked


class TestBcast:
    def test_scalar_bcast(self):
        body = """
    var x = 0;
    if (rank == 2) { x = 99; }
    x = mpi_bcast(x, 2, MPI_COMM_WORLD);
    print(x);
    mpi_finalize();
"""
        assert run_world(body).printed_lines() == ["99"] * 4

    def test_array_bcast_in_place(self):
        body = """
    var a[2];
    if (rank == 0) { a[0] = 3.5; a[1] = 4.5; }
    mpi_bcast(a, 0, MPI_COMM_WORLD);
    print(a[0], a[1]);
    mpi_finalize();
"""
        assert run_world(body, nprocs=2).printed_lines() == ["3.5 4.5"] * 2


class TestReductions:
    def test_allreduce_sum(self):
        body = """
    var total = mpi_allreduce(rank + 1, MPI_SUM, MPI_COMM_WORLD);
    print(total);
    mpi_finalize();
"""
        assert run_world(body).printed_lines() == ["10"] * 4

    def test_allreduce_max(self):
        body = """
    print(mpi_allreduce(rank, MPI_MAX, MPI_COMM_WORLD));
    mpi_finalize();
"""
        assert run_world(body, nprocs=3).printed_lines() == ["2"] * 3

    def test_reduce_only_root_gets_result(self):
        body = """
    var r = mpi_reduce(rank + 1, MPI_SUM, 1, MPI_COMM_WORLD);
    print(r);
    mpi_finalize();
"""
        out = run_world(body, nprocs=3).printed_lines()
        assert sorted(out) == ["0", "0", "6"]

    def test_allreduce_array_elementwise(self):
        body = """
    var a[2];
    a[0] = rank; a[1] = 1;
    mpi_allreduce(a, MPI_SUM, MPI_COMM_WORLD);
    print(a[0], a[1]);
    mpi_finalize();
"""
        assert run_world(body, nprocs=3).printed_lines() == ["3.0 3.0"] * 3


class TestGatherScatter:
    def test_gather_at_root(self):
        body = """
    var recv[4];
    mpi_gather(rank * 10, recv, 0, MPI_COMM_WORLD);
    if (rank == 0) { print(recv[0], recv[1], recv[2], recv[3]); }
    mpi_finalize();
"""
        assert run_world(body).printed_lines() == ["0.0 10.0 20.0 30.0"]

    def test_allgather_everywhere(self):
        body = """
    var recv[3];
    mpi_allgather(rank + 1, recv, MPI_COMM_WORLD);
    print(recv[0] + recv[1] + recv[2]);
    mpi_finalize();
"""
        assert run_world(body, nprocs=3).printed_lines() == ["6.0"] * 3

    def test_scatter_distributes_root_elements(self):
        body = """
    var send[4];
    if (rank == 1) {
        send[0] = 5; send[1] = 6; send[2] = 7; send[3] = 8;
    }
    print(mpi_scatter(send, 1, MPI_COMM_WORLD));
    mpi_finalize();
"""
        assert sorted(run_world(body).printed_lines()) == ["5.0", "6.0", "7.0", "8.0"]

    def test_alltoall_transpose(self):
        body = """
    var send[2];
    var recv[2];
    send[0] = rank * 10;
    send[1] = rank * 10 + 1;
    mpi_alltoall(send, recv, MPI_COMM_WORLD);
    print(recv[0], recv[1]);
    mpi_finalize();
"""
        out = run_world(body, nprocs=2).printed_lines()
        assert sorted(out) == ["0.0 10.0", "1.0 11.0"]


class TestMismatch:
    def test_collective_op_mismatch_noted(self):
        body = """
    if (rank == 0) { mpi_barrier(MPI_COMM_WORLD); }
    if (rank == 1) { var x = mpi_allreduce(1, MPI_SUM, MPI_COMM_WORLD); }
    mpi_finalize();
"""
        result = run_world(body, nprocs=2)
        assert any("collective mismatch" in n for n in result.notes)
