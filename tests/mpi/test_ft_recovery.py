"""Fault-tolerant MPI semantics: error handlers, timeouts, ULFM recovery."""

import io

from helpers import run_src

from repro.events import ErrorHandlerEvent, MPIErrorEvent, dump_log, load_log
from repro.faults import RANK_CRASH, FaultPlan, FaultSpec, builtin_plans
from repro.home import Home
from repro.mpi.errors import (
    MPI_ERR_PROC_FAILED,
    MPI_ERR_REVOKED,
    MPI_ERR_TIMEOUT,
    MPI_ERRORS_ARE_FATAL,
    MPI_ERRORS_RETURN,
)
from repro.violations import HANDLER_REENTRANCY, RECOVERY_RACE
from repro.workloads.npb import build_ft_mz

REVOKED_RECV = """
program t;
var buf[2];
func main() {
    mpi_init();
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    mpi_comm_set_errhandler(MPI_COMM_WORLD, MPI_ERRORS_RETURN);
    mpi_comm_revoke(MPI_COMM_WORLD);
    var rc = mpi_recv(buf, 1, 1 - rank, 9, MPI_COMM_WORLD);
    print(rc);
    mpi_finalize();
}
"""

USER_HANDLER = """
program t;
var buf[2];
var seen[2];
func h(comm, code) {
    seen[0] = comm + 1;
    seen[1] = code;
    return 0;
}
func main() {
    mpi_init();
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    mpi_comm_set_errhandler(MPI_COMM_WORLD, "h");
    mpi_comm_revoke(MPI_COMM_WORLD);
    var rc = mpi_recv(buf, 1, 1 - rank, 9, MPI_COMM_WORLD);
    print(seen[0], seen[1], rc);
    mpi_finalize();
}
"""

# rank 1's calls: init=1, set_errhandler=2, first send=3, second send=4
CRASH_SENDER = """
program t;
var buf[2];
func main() {
    mpi_init();
    mpi_comm_set_errhandler(MPI_COMM_WORLD, MPI_ERRORS_RETURN);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    if (rank == 0) {
        var rc = mpi_recv(buf, 1, 1, 7, MPI_COMM_WORLD);
        print(rc);
        var rc2 = mpi_recv(buf, 1, 1, 8, MPI_COMM_WORLD);
        print(rc2);
        var acked = mpi_comm_failure_ack(MPI_COMM_WORLD);
        print(acked);
    } else {
        mpi_send(buf, 1, 0, 7, MPI_COMM_WORLD);
        mpi_send(buf, 1, 0, 8, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
"""

TIMEOUT_RECV = """
program t;
var buf[2];
func main() {
    mpi_init();
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    mpi_comm_set_errhandler(MPI_COMM_WORLD, MPI_ERRORS_RETURN);
    mpi_set_timeout(MPI_COMM_WORLD, 100, 2);
    if (rank == 0) {
        var rc = mpi_recv(buf, 1, 1, 9, MPI_COMM_WORLD);
        print(rc);
    }
    mpi_finalize();
}
"""

SHRINK_AFTER_CRASH = """
program t;
var buf[2];
func main() {
    mpi_init();
    mpi_comm_set_errhandler(MPI_COMM_WORLD, MPI_ERRORS_RETURN);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    if (rank == 2) {
        mpi_send(buf, 1, 0, 5, MPI_COMM_WORLD);
    }
    var nc = mpi_comm_shrink(MPI_COMM_WORLD);
    print(mpi_comm_size(nc));
    mpi_finalize();
}
"""

THREADED_SHRINK = """
program t;
var ids[2];
func main() {
    mpi_init_thread(MPI_THREAD_MULTIPLE);
    omp parallel num_threads(2) {
        var nc = mpi_comm_shrink(MPI_COMM_WORLD);
        ids[omp_get_thread_num()] = nc;
    }
    if (ids[0] != ids[1]) { print(1); } else { print(0); }
    mpi_finalize();
}
"""


def crash_plan(rank, at_call):
    return FaultPlan((FaultSpec(RANK_CRASH, rank=rank, at_call=at_call),),
                     name="c")


class TestErrorHandlers:
    def test_default_handler_is_fatal(self):
        src = REVOKED_RECV.replace(
            "    mpi_comm_set_errhandler(MPI_COMM_WORLD, MPI_ERRORS_RETURN);\n",
            "")
        result = run_src(src, nprocs=2, threads=1)
        assert not result.deadlocked
        assert result.printed_lines() == []
        aborted = [n for n in result.notes if "MPI_ERRORS_ARE_FATAL" in n]
        assert len(aborted) >= 2  # both ranks died in their recv

    def test_errors_return_surfaces_revoked(self):
        result = run_src(REVOKED_RECV, nprocs=2, threads=1)
        assert not result.deadlocked
        assert result.printed_lines() == [str(MPI_ERR_REVOKED)] * 2

    def test_get_errhandler_roundtrip(self):
        src = """
program t;
func main() {
    mpi_init();
    print(mpi_comm_get_errhandler(MPI_COMM_WORLD));
    mpi_comm_set_errhandler(MPI_COMM_WORLD, MPI_ERRORS_RETURN);
    print(mpi_comm_get_errhandler(MPI_COMM_WORLD));
    mpi_finalize();
}
"""
        result = run_src(src, nprocs=1, threads=1)
        assert result.printed_lines() == [
            str(MPI_ERRORS_ARE_FATAL), str(MPI_ERRORS_RETURN)
        ]

    def test_user_handler_called_with_comm_and_code(self):
        result = run_src(USER_HANDLER, nprocs=2, threads=1)
        assert not result.deadlocked
        # handler saw (comm=0 -> stored +1, code); the call returned the
        # code (array slots print as floats, scalars as ints)
        expected = f"1.0 {MPI_ERR_REVOKED}.0 {MPI_ERR_REVOKED}"
        assert result.printed_lines() == [expected] * 2
        phases = [e.phase for e in result.log
                  if type(e) is ErrorHandlerEvent and e.proc == 0]
        assert phases == ["enter", "exit"]
        errors = [e for e in result.log if type(e) is MPIErrorEvent]
        assert {e.proc for e in errors} == {0, 1}
        assert all(e.error_class == "MPI_ERR_REVOKED" for e in errors)

    def test_unknown_handler_falls_back_to_return(self):
        src = USER_HANDLER.replace('"h"', '"no_such_handler"')
        result = run_src(src, nprocs=2, threads=1)
        # handler never ran: seen[] untouched, the code still came back
        assert result.printed_lines() == [f"0.0 0.0 {MPI_ERR_REVOKED}"] * 2
        assert any("unknown error handler" in n for n in result.notes)


class TestProcessFailure:
    def test_recv_from_crashed_peer_surfaces_proc_failed(self):
        result = run_src(CRASH_SENDER, nprocs=2, threads=1,
                         fault_plan=crash_plan(rank=1, at_call=3))
        assert not result.deadlocked
        # both recvs fail: rank 1 died before mailing anything
        assert result.printed_lines() == [
            str(MPI_ERR_PROC_FAILED), str(MPI_ERR_PROC_FAILED), "1",
        ]

    def test_messages_mailed_before_crash_still_deliver(self):
        result = run_src(CRASH_SENDER, nprocs=2, threads=1,
                         fault_plan=crash_plan(rank=1, at_call=4))
        assert not result.deadlocked
        # first recv matches the message mailed before the crash
        # (mpi_recv returns the matched source on success)
        assert result.printed_lines() == [
            "1", str(MPI_ERR_PROC_FAILED), "1",
        ]


class TestTimeouts:
    def test_retry_budget_exhaustion_surfaces_timeout(self):
        result = run_src(TIMEOUT_RECV, nprocs=2, threads=1)
        assert not result.deadlocked
        assert result.failure is None
        assert result.printed_lines() == [str(MPI_ERR_TIMEOUT)]
        retries = [n for n in result.notes if "timed out, retry" in n]
        assert len(retries) == 2  # max_retries=2, then the error surfaces

    def test_timeout_is_deterministic(self):
        a = run_src(TIMEOUT_RECV, nprocs=2, threads=1, seed=5)
        b = run_src(TIMEOUT_RECV, nprocs=2, threads=1, seed=5)
        assert a.notes == b.notes
        assert a.makespan == b.makespan
        assert len(a.log) == len(b.log)


class TestUlfmRecovery:
    def test_revoke_wakes_blocked_peer(self):
        src = """
program t;
var buf[2];
func main() {
    mpi_init();
    mpi_comm_set_errhandler(MPI_COMM_WORLD, MPI_ERRORS_RETURN);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    if (rank == 0) {
        mpi_comm_revoke(MPI_COMM_WORLD);
    } else {
        var rc = mpi_recv(buf, 1, 0, 9, MPI_COMM_WORLD);
        print(rc);
    }
    mpi_finalize();
}
"""
        result = run_src(src, nprocs=2, threads=1)
        assert not result.deadlocked
        assert result.printed_lines() == [str(MPI_ERR_REVOKED)]

    def test_barrier_surfaces_proc_failed(self):
        src = """
program t;
func main() {
    mpi_init();
    mpi_comm_set_errhandler(MPI_COMM_WORLD, MPI_ERRORS_RETURN);
    var rc = mpi_barrier(MPI_COMM_WORLD);
    print(rc);
    mpi_finalize();
}
"""
        result = run_src(src, nprocs=2, threads=1,
                         fault_plan=crash_plan(rank=1, at_call=3))
        assert not result.deadlocked
        assert result.printed_lines() == [str(MPI_ERR_PROC_FAILED)]

    def test_shrink_excludes_failed_rank(self):
        result = run_src(SHRINK_AFTER_CRASH, nprocs=3, threads=1,
                         fault_plan=crash_plan(rank=2, at_call=3))
        assert not result.deadlocked
        assert result.printed_lines() == ["2", "2"]

    def test_shrink_without_failures_keeps_size(self):
        result = run_src(SHRINK_AFTER_CRASH, nprocs=3, threads=1)
        assert not result.deadlocked
        # rank 2's eager send is simply never received; nobody failed
        assert result.printed_lines() == ["3", "3", "3"]

    def test_concurrent_shrinks_produce_distinct_comms(self):
        result = run_src(THREADED_SHRINK, nprocs=2, threads=2)
        assert not result.deadlocked
        assert result.printed_lines() == ["1", "1"]


class TestFtEventSerialization:
    def test_error_and_handler_events_roundtrip(self):
        result = run_src(USER_HANDLER, nprocs=2, threads=1)
        buf = io.StringIO()
        dump_log(result.log, buf)
        buf.seek(0)
        loaded, _ = load_log(buf)
        assert len(loaded) == len(result.log)
        assert any(type(e) is MPIErrorEvent for e in loaded)
        assert any(type(e) is ErrorHandlerEvent for e in loaded)
        for original, reloaded in zip(result.log, loaded):
            assert original == reloaded


class TestFtWorkloadEndToEnd:
    def check(self, inject, plan_name):
        program = build_ft_mz(inject=inject)
        plan = builtin_plans(2)[plan_name] if plan_name else None
        return Home().check(program, nprocs=2, num_threads=2, seed=0,
                            fault_plan=plan)

    def test_crash_reveals_error_path_violations(self):
        report = self.check(True, "crash")
        assert not report.execution.deadlocked
        classes = report.violations.classes()
        assert HANDLER_REENTRANCY in classes
        assert RECOVERY_RACE in classes

    def test_fixed_variant_is_clean_under_crash(self):
        report = self.check(False, "crash")
        assert not report.execution.deadlocked
        assert not report.violations.classes()

    def test_shrink_race_found_even_fault_free(self):
        report = self.check(True, None)
        classes = report.violations.classes()
        assert RECOVERY_RACE in classes
        assert HANDLER_REENTRANCY not in classes
