"""Collective engine unit tests (no interpreter)."""

import numpy as np
import pytest

from repro.errors import MPIUsageError
from repro.mpi.collectives import CollectiveEngine, apply_reduce
from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import MPI_MAX, MPI_MIN, MPI_PROD, MPI_SUM


@pytest.fixture
def comm2():
    return CommRegistry(2).world


class TestApplyReduce:
    def test_scalar_sum(self):
        assert apply_reduce(MPI_SUM, [1, 2, 3]) == 6

    def test_scalar_max_min(self):
        assert apply_reduce(MPI_MAX, [1, 5, 3]) == 5
        assert apply_reduce(MPI_MIN, [1, 5, 3]) == 1

    def test_scalar_prod(self):
        assert apply_reduce(MPI_PROD, [2, 3, 4]) == 24

    def test_array_sum_elementwise(self):
        out = apply_reduce(MPI_SUM, [np.asarray([1.0, 2.0]), np.asarray([3.0, 4.0])])
        assert list(out) == [4.0, 6.0]

    def test_empty_contributions_rejected(self):
        with pytest.raises(MPIUsageError):
            apply_reduce(MPI_SUM, [])

    def test_unknown_op_rejected(self):
        with pytest.raises(MPIUsageError):
            apply_reduce(42, [1, 2])


class TestCollectiveSlots:
    def test_per_process_index_counter(self, comm2):
        engine = CollectiveEngine()
        assert engine.next_index(0, 0) == 0
        assert engine.next_index(0, 0) == 1
        assert engine.next_index(0, 1) == 0  # other rank independent

    def test_slot_completes_when_all_members_arrive(self, comm2):
        engine = CollectiveEngine()
        engine.arrive(comm2, 0, 0, "mpi_barrier", time=1.0)
        assert not engine.complete(comm2, 0)
        engine.arrive(comm2, 0, 1, "mpi_barrier", time=3.0)
        assert engine.complete(comm2, 0)
        assert engine.completion_time(comm2, 0) == 3.0

    def test_op_mismatch_recorded(self, comm2):
        engine = CollectiveEngine()
        engine.arrive(comm2, 0, 0, "mpi_barrier", time=0.0)
        slot = engine.arrive(comm2, 0, 1, "mpi_bcast", time=0.0, root=0)
        assert slot.mismatch is not None
        assert engine.mismatches

    def test_double_arrival_rejected(self, comm2):
        engine = CollectiveEngine()
        engine.arrive(comm2, 0, 0, "mpi_barrier", time=0.0)
        with pytest.raises(MPIUsageError, match="arrived twice"):
            engine.arrive(comm2, 0, 0, "mpi_barrier", time=1.0)

    def test_contributions_stored_by_world_rank(self, comm2):
        engine = CollectiveEngine()
        engine.arrive(comm2, 0, 0, "mpi_allreduce", time=0.0, value=10, reduce_op=MPI_SUM)
        engine.arrive(comm2, 0, 1, "mpi_allreduce", time=0.0, value=20, reduce_op=MPI_SUM)
        slot = engine.slot(0, 0)
        assert slot.contributions == {0: 10, 1: 20}

    def test_counters_scoped_by_comm(self, comm2):
        engine = CollectiveEngine()
        assert engine.next_index(0, 0) == 0
        assert engine.next_index(5, 0) == 0
