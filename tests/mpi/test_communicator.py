"""Communicator registry unit tests."""

import pytest

from repro.errors import MPIUsageError
from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import MPI_COMM_WORLD


class TestWorld:
    def test_world_identity_mapping(self):
        reg = CommRegistry(4)
        world = reg.world
        assert world.size == 4
        assert [world.world_rank(r) for r in range(4)] == [0, 1, 2, 3]

    def test_rank_out_of_range(self):
        reg = CommRegistry(2)
        with pytest.raises(MPIUsageError):
            reg.world.world_rank(2)

    def test_invalid_handle(self):
        reg = CommRegistry(2)
        with pytest.raises(MPIUsageError):
            reg.get(999)


class TestDup:
    def test_dup_completes_when_all_arrive(self):
        reg = CommRegistry(2)
        reg.dup_arrive(MPI_COMM_WORLD, 0, 0)
        assert not reg.dup_complete(MPI_COMM_WORLD, 0)
        reg.dup_arrive(MPI_COMM_WORLD, 0, 1)
        assert reg.dup_complete(MPI_COMM_WORLD, 0)

    def test_dup_produces_one_shared_comm(self):
        reg = CommRegistry(2)
        reg.dup_arrive(MPI_COMM_WORLD, 0, 0)
        reg.dup_arrive(MPI_COMM_WORLD, 0, 1)
        cid_a = reg.dup_result(MPI_COMM_WORLD, 0)
        cid_b = reg.dup_result(MPI_COMM_WORLD, 0)
        assert cid_a == cid_b != MPI_COMM_WORLD
        assert reg.get(cid_a).members == [0, 1]

    def test_separate_dup_instances_distinct(self):
        reg = CommRegistry(1)
        reg.dup_arrive(MPI_COMM_WORLD, 0, 0)
        reg.dup_arrive(MPI_COMM_WORLD, 1, 0)
        assert reg.dup_result(MPI_COMM_WORLD, 0) != reg.dup_result(MPI_COMM_WORLD, 1)


class TestSplit:
    def test_split_by_color(self):
        reg = CommRegistry(4)
        for rank in range(4):
            reg.split_arrive(MPI_COMM_WORLD, 0, rank, color=rank % 2, key=rank)
        assert reg.split_complete(MPI_COMM_WORLD, 0)
        even = reg.split_result(MPI_COMM_WORLD, 0, 0)
        odd = reg.split_result(MPI_COMM_WORLD, 0, 1)
        assert even != odd
        assert reg.get(even).members == [0, 2]
        assert reg.get(odd).members == [1, 3]

    def test_split_key_orders_local_ranks(self):
        reg = CommRegistry(2)
        reg.split_arrive(MPI_COMM_WORLD, 0, 0, color=0, key=5)
        reg.split_arrive(MPI_COMM_WORLD, 0, 1, color=0, key=1)
        cid = reg.split_result(MPI_COMM_WORLD, 0, 0)
        comm = reg.get(cid)
        # rank 1 had the smaller key, so it becomes local rank 0
        assert comm.members == [1, 0]
        assert comm.local_rank(0) == 1

    def test_local_rank_of_non_member(self):
        reg = CommRegistry(4)
        for rank in range(4):
            reg.split_arrive(MPI_COMM_WORLD, 0, rank, color=rank % 2, key=rank)
        even = reg.split_result(MPI_COMM_WORLD, 0, 0)
        with pytest.raises(MPIUsageError):
            reg.get(even).local_rank(1)
