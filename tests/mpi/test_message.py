"""Mailbox / envelope-matching unit tests."""

import numpy as np
import pytest

from repro.mpi.constants import MPI_ANY_SOURCE, MPI_ANY_TAG
from repro.mpi.message import Mailbox, Message, envelope_matches


def msg(src=0, tag=1, comm=0, payload=(1.0,), sent=0.0):
    return Message(
        src=src, dst=1, tag=tag, comm=comm,
        payload=np.asarray(payload), sent_time=sent, avail_time=sent + 1.0,
    )


class TestEnvelopeMatching:
    def test_exact_match(self):
        assert envelope_matches(msg(src=2, tag=7), 2, 7)

    def test_source_mismatch(self):
        assert not envelope_matches(msg(src=2, tag=7), 3, 7)

    def test_tag_mismatch(self):
        assert not envelope_matches(msg(src=2, tag=7), 2, 8)

    def test_any_source_wildcard(self):
        assert envelope_matches(msg(src=5, tag=7), MPI_ANY_SOURCE, 7)

    def test_any_tag_wildcard(self):
        assert envelope_matches(msg(src=5, tag=7), 5, MPI_ANY_TAG)

    def test_double_wildcard(self):
        assert envelope_matches(msg(src=5, tag=7), MPI_ANY_SOURCE, MPI_ANY_TAG)


class TestMailbox:
    def test_deliver_and_take(self):
        box = Mailbox(1, 0)
        m = msg()
        box.deliver(m)
        taken = box.take(0, 1)
        assert taken is m
        assert taken.consumed
        assert len(box) == 0

    def test_take_no_match_returns_none(self):
        box = Mailbox(1, 0)
        box.deliver(msg(tag=1))
        assert box.take(0, 2) is None
        assert len(box) == 1

    def test_find_does_not_consume(self):
        box = Mailbox(1, 0)
        box.deliver(msg())
        assert box.find(0, 1) is not None
        assert len(box) == 1

    def test_non_overtaking_same_envelope(self):
        """Messages from one sender with one tag match in send order."""
        box = Mailbox(1, 0)
        first = msg(payload=(1.0,))
        second = msg(payload=(2.0,))
        box.deliver(first)
        box.deliver(second)
        assert box.take(0, 1) is first
        assert box.take(0, 1) is second

    def test_matching_skips_non_matching_earlier_message(self):
        box = Mailbox(1, 0)
        other = msg(tag=9)
        wanted = msg(tag=1)
        box.deliver(other)
        box.deliver(wanted)
        assert box.take(0, 1) is wanted
        assert box.take(0, 9) is other

    def test_wildcard_takes_earliest(self):
        box = Mailbox(1, 0)
        a = msg(src=0, tag=1)
        b = msg(src=2, tag=3)
        box.deliver(a)
        box.deliver(b)
        assert box.take(MPI_ANY_SOURCE, MPI_ANY_TAG) is a

    def test_delivered_counter(self):
        box = Mailbox(1, 0)
        box.deliver(msg())
        box.deliver(msg())
        box.take(0, 1)
        assert box.delivered == 2

    def test_message_ids_unique(self):
        assert msg().msg_id != msg().msg_id

    def test_message_count_property(self):
        assert msg(payload=(1.0, 2.0, 3.0)).count == 3
