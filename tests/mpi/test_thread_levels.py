"""MPI thread-support level semantics."""

import pytest

from helpers import run_src, wrap_main


def run_with_level(level, body, mode="skip", nprocs=1, **kw):
    src = wrap_main(
        f"    var provided = mpi_init_thread({level});\n"
        f"    var rank = mpi_comm_rank(MPI_COMM_WORLD);\n" + body
    )
    return run_src(src, nprocs=nprocs, thread_level_mode=mode, **kw)


class TestInitialization:
    def test_provided_level_returned(self):
        result = run_with_level("MPI_THREAD_MULTIPLE", "    print(provided);\n    mpi_finalize();")
        assert result.printed_lines() == ["3"]

    def test_plain_init_gives_single(self):
        src = wrap_main("    mpi_init();\n    print(mpi_is_thread_main());\n    mpi_finalize();")
        assert run_src(src).printed_lines() == ["True"]

    def test_max_thread_level_caps_provided(self):
        result = run_with_level(
            "MPI_THREAD_MULTIPLE", "    print(provided);\n    mpi_finalize();",
            max_thread_level=1,
        )
        assert result.printed_lines() == ["1"]

    def test_double_init_aborts(self):
        src = wrap_main("    mpi_init();\n    mpi_init();")
        result = run_src(src)
        assert any("initialized twice" in n for n in result.notes)

    def test_call_before_init_aborts(self):
        src = wrap_main("    mpi_barrier(MPI_COMM_WORLD);")
        result = run_src(src)
        assert any("before MPI initialization" in n for n in result.notes)

    def test_call_after_finalize_aborts(self):
        src = wrap_main(
            "    mpi_init();\n    mpi_finalize();\n    mpi_barrier(MPI_COMM_WORLD);"
        )
        result = run_src(src)
        assert any("after mpi_finalize" in n for n in result.notes)


class TestSingleAndFunneled:
    BODY = """
    omp parallel num_threads(2) {
        if (omp_get_thread_num() == 1) {
            mpi_barrier(MPI_COMM_WORLD);
        }
    }
    mpi_finalize();
"""

    def test_skip_mode_skips_breaching_call(self):
        result = run_with_level("MPI_THREAD_SINGLE", self.BODY, mode="skip")
        assert not result.deadlocked  # call skipped, no unmatched barrier
        assert any("non-main thread" in n for n in result.notes)

    def test_strict_mode_aborts(self):
        result = run_with_level("MPI_THREAD_SINGLE", self.BODY, mode="strict")
        assert any("aborted" in n for n in result.notes)

    def test_funneled_blocks_worker_calls(self):
        result = run_with_level("MPI_THREAD_FUNNELED", self.BODY, mode="skip")
        assert any("MPI_THREAD_FUNNELED" in n for n in result.notes)

    def test_funneled_master_calls_fine(self):
        body = """
    omp parallel num_threads(2) {
        omp master { mpi_barrier(MPI_COMM_WORLD); }
    }
    mpi_finalize();
"""
        result = run_with_level("MPI_THREAD_FUNNELED", body, mode="strict")
        assert not result.notes

    def test_is_thread_main_in_workers(self):
        body = """
    omp parallel num_threads(2) {
        print(mpi_is_thread_main());
    }
    mpi_finalize();
"""
        result = run_with_level("MPI_THREAD_MULTIPLE", body)
        assert sorted(result.printed_lines()) == ["False", "True"]


class TestSerialized:
    def test_concurrent_calls_noted_in_permissive(self):
        body = """
    var buf[2];
    mpi_send(buf, 1, 0, 7, MPI_COMM_WORLD);
    mpi_send(buf, 1, 0, 7, MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD);
    }
    mpi_finalize();
"""
        result = run_with_level(
            "MPI_THREAD_SERIALIZED", body, mode="permissive", seed=1
        )
        # Whether the overlap manifests depends on schedule; across a few
        # seeds at least one run must observe it.
        observed = any("overlaps another" in n for n in result.notes)
        if not observed:
            for seed in range(2, 8):
                result = run_with_level(
                    "MPI_THREAD_SERIALIZED", body, mode="permissive", seed=seed
                )
                if any("overlaps another" in n for n in result.notes):
                    observed = True
                    break
        assert observed

    def test_serialized_sequential_calls_fine(self):
        body = """
    mpi_barrier(MPI_COMM_WORLD);
    mpi_barrier(MPI_COMM_WORLD);
    mpi_finalize();
"""
        result = run_with_level("MPI_THREAD_SERIALIZED", body, mode="strict")
        assert not result.notes


class TestFinalize:
    def test_finalize_from_worker_noted(self):
        body = """
    omp parallel num_threads(2) {
        if (omp_get_thread_num() == 1) { mpi_finalize(); }
    }
"""
        result = run_with_level("MPI_THREAD_MULTIPLE", body, mode="permissive")
        assert any("non-main thread" in n for n in result.notes)

    def test_finalize_with_pending_request_noted(self):
        body = """
    var buf[1];
    var req = mpi_irecv(buf, 1, 0, 9, MPI_COMM_WORLD);
    mpi_finalize();
"""
        result = run_with_level("MPI_THREAD_MULTIPLE", body)
        assert any("pending request" in n for n in result.notes)
