"""Deadlock diagnosis tests (wait-for graph and simulator fidelity)."""

import pytest

from helpers import MPI_PAIR_HEADER, run_src, wrap_main

from repro.mpi.deadlock import DeadlockDiagnosis, diagnose
from repro.runtime.scheduler import BlockedInfo


class TestDiagnosisStructure:
    def _info(self, proc=0, thread=0, reason="mpi_recv waiting"):
        return BlockedInfo(name=f"p{proc}.t{thread}", proc=proc,
                           thread=thread, reason=reason)

    def test_counts_blocked(self):
        diag = diagnose([self._info(), self._info(proc=1)])
        assert diag.nblocked == 2

    def test_graph_has_waiter_and_resource_nodes(self):
        diag = diagnose([self._info()])
        kinds = {d["kind"] for _, d in diag.graph.nodes(data=True)}
        assert kinds == {"thread", "resource"}

    def test_involves_mpi(self):
        assert diagnose([self._info(reason="mpi_recv ...")]).involves_mpi()
        assert not diagnose([self._info(reason="omp barrier")]).involves_mpi()

    def test_summary_lists_every_thread(self):
        diag = diagnose([self._info(proc=0), self._info(proc=3, thread=2)])
        text = diag.summary()
        assert "rank 0" in text and "rank 3 thread 2" in text


class TestEndToEndDeadlocks:
    def test_cyclic_sync_sends_deadlock(self):
        """Classic head-to-head rendezvous deadlock: both ranks send
        synchronously before either receives."""
        body = """
    var buf[1];
    var partner = 1 - rank;
    mpi_send(buf, 1, partner, 5, MPI_COMM_WORLD);
    mpi_recv(buf, 1, partner, 5, MPI_COMM_WORLD);
    mpi_finalize();
"""
        result = run_src(wrap_main(MPI_PAIR_HEADER + body), nprocs=2,
                         sync_sends=True)
        assert result.deadlocked
        assert result.deadlock.nblocked == 2
        assert result.deadlock.involves_mpi()

    def test_same_program_buffered_is_fine(self):
        body = """
    var buf[1];
    var partner = 1 - rank;
    mpi_send(buf, 1, partner, 5, MPI_COMM_WORLD);
    mpi_recv(buf, 1, partner, 5, MPI_COMM_WORLD);
    mpi_finalize();
"""
        result = run_src(wrap_main(MPI_PAIR_HEADER + body), nprocs=2)
        assert not result.deadlocked

    def test_tag_mismatch_deadlock_names_the_envelope(self):
        body = """
    var buf[1];
    if (rank == 0) { mpi_send(buf, 1, 1, 5, MPI_COMM_WORLD); }
    if (rank == 1) { mpi_recv(buf, 1, 0, 6, MPI_COMM_WORLD); }
    mpi_finalize();
"""
        result = run_src(wrap_main(MPI_PAIR_HEADER + body), nprocs=2)
        assert result.deadlocked
        assert "tag=6" in result.deadlock.summary()

    def test_barrier_team_deadlock_via_diverging_singles(self):
        """One thread stuck in a blocking receive never reaches the
        implicit barrier: the team deadlocks and the report shows both
        the MPI wait and the barrier wait."""
        body = """
    omp parallel num_threads(2) {
        var buf[1];
        if (omp_get_thread_num() == 1) {
            mpi_recv(buf, 1, 1 - rank, 99, MPI_COMM_WORLD);
        }
    }
    mpi_finalize();
"""
        result = run_src(wrap_main(MPI_PAIR_HEADER + body), nprocs=2)
        assert result.deadlocked
        summary = result.deadlock.summary()
        assert "mpi_recv" in summary
        assert "join omp parallel team" in summary or "barrier" in summary


class TestMessageRaceFidelity:
    def test_same_tag_matching_is_schedule_dependent(self):
        """Simulator fidelity for the paper's motivation: with one shared
        tag, which thread gets which message varies with the schedule —
        the nondeterminism behind the Concurrent-Recv violation."""
        body = """
    var buf[1];
    var partner = 1 - rank;
    if (rank == 0) {
        buf[0] = 1; mpi_send(buf, 1, 1, 7, MPI_COMM_WORLD);
        buf[0] = 2; mpi_send(buf, 1, 1, 7, MPI_COMM_WORLD);
    }
    if (rank == 1) {
        omp parallel num_threads(2) {
            var mine[1];
            mpi_recv(mine, 1, 0, 7, MPI_COMM_WORLD);
            print(omp_get_thread_num(), mine[0]);
        }
    }
    mpi_finalize();
"""
        outcomes = set()
        for seed in range(8):
            result = run_src(wrap_main(MPI_PAIR_HEADER + body), nprocs=2,
                             seed=seed)
            outcomes.add(tuple(sorted(result.printed_lines())))
        # Message values always {1, 2} in total ...
        for outcome in outcomes:
            values = sorted(line.split()[1] for line in outcome)
            assert values == ["1.0", "2.0"]
        # ... but the thread-to-message assignment varies with the seed.
        assert len(outcomes) > 1
