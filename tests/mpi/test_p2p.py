"""Point-to-point semantics through the interpreter."""

import pytest

from helpers import MPI_PAIR_HEADER, run_src, wrap_main

from repro.errors import DeadlockError


def run_pair(body, nprocs=2, **kw):
    return run_src(wrap_main(MPI_PAIR_HEADER + body), nprocs=nprocs, **kw)


class TestBlockingSendRecv:
    def test_payload_transferred(self):
        body = """
    var buf[3];
    if (rank == 0) {
        buf[0] = 1.5; buf[1] = 2.5; buf[2] = 3.5;
        mpi_send(buf, 3, 1, 9, MPI_COMM_WORLD);
    }
    if (rank == 1) {
        mpi_recv(buf, 3, 0, 9, MPI_COMM_WORLD);
        print(buf[0], buf[1], buf[2]);
    }
    mpi_finalize();
"""
        result = run_pair(body)
        assert result.printed_lines() == ["1.5 2.5 3.5"]

    def test_recv_returns_matched_source(self):
        body = """
    var buf[1];
    if (rank == 0) { mpi_send(buf, 1, 1, 4, MPI_COMM_WORLD); }
    if (rank == 1) { print(mpi_recv(buf, 1, MPI_ANY_SOURCE, 4, MPI_COMM_WORLD)); }
    mpi_finalize();
"""
        assert run_pair(body).printed_lines() == ["0"]

    def test_any_tag_wildcard(self):
        body = """
    var buf[1];
    if (rank == 0) { mpi_send(buf, 1, 1, 123, MPI_COMM_WORLD); }
    if (rank == 1) { mpi_recv(buf, 1, 0, MPI_ANY_TAG, MPI_COMM_WORLD); print("got"); }
    mpi_finalize();
"""
        assert run_pair(body).printed_lines() == ["got"]

    def test_non_overtaking_order(self):
        body = """
    var buf[1];
    if (rank == 0) {
        buf[0] = 1; mpi_send(buf, 1, 1, 5, MPI_COMM_WORLD);
        buf[0] = 2; mpi_send(buf, 1, 1, 5, MPI_COMM_WORLD);
    }
    if (rank == 1) {
        mpi_recv(buf, 1, 0, 5, MPI_COMM_WORLD); print(buf[0]);
        mpi_recv(buf, 1, 0, 5, MPI_COMM_WORLD); print(buf[0]);
    }
    mpi_finalize();
"""
        for seed in (0, 1, 7):
            assert run_pair(body, seed=seed).printed_lines() == ["1.0", "2.0"]

    def test_tags_differentiate_messages(self):
        body = """
    var buf[1];
    if (rank == 0) {
        buf[0] = 10; mpi_send(buf, 1, 1, 1, MPI_COMM_WORLD);
        buf[0] = 20; mpi_send(buf, 1, 1, 2, MPI_COMM_WORLD);
    }
    if (rank == 1) {
        mpi_recv(buf, 1, 0, 2, MPI_COMM_WORLD); print(buf[0]);
        mpi_recv(buf, 1, 0, 1, MPI_COMM_WORLD); print(buf[0]);
    }
    mpi_finalize();
"""
        assert run_pair(body).printed_lines() == ["20.0", "10.0"]

    def test_missing_message_deadlocks(self):
        body = """
    var buf[1];
    if (rank == 1) { mpi_recv(buf, 1, 0, 5, MPI_COMM_WORLD); }
    mpi_finalize();
"""
        result = run_pair(body)
        assert result.deadlocked
        assert "mpi_recv" in result.deadlock.summary()

    def test_raise_on_deadlock_config(self):
        body = """
    var buf[1];
    if (rank == 1) { mpi_recv(buf, 1, 0, 5, MPI_COMM_WORLD); }
"""
        with pytest.raises(DeadlockError):
            run_pair(body, raise_on_deadlock=True)

    def test_recv_completion_respects_latency(self):
        body = """
    var buf[1];
    if (rank == 0) { mpi_send(buf, 1, 1, 5, MPI_COMM_WORLD); }
    if (rank == 1) { mpi_recv(buf, 1, 0, 5, MPI_COMM_WORLD); }
    mpi_finalize();
"""
        result = run_pair(body)
        # receiver clock must include the message latency (60 units)
        assert result.proc_clocks[1] >= 60

    def test_scalar_send(self):
        body = """
    var buf[1];
    if (rank == 0) { mpi_send(42, 1, 1, 5, MPI_COMM_WORLD); }
    if (rank == 1) { mpi_recv(buf, 1, 0, 5, MPI_COMM_WORLD); print(buf[0]); }
    mpi_finalize();
"""
        assert run_pair(body).printed_lines() == ["42.0"]


class TestSyncMode:
    def test_sync_send_blocks_until_recv(self):
        body = """
    var buf[1];
    if (rank == 0) {
        mpi_send(buf, 1, 1, 5, MPI_COMM_WORLD);
        print("sent at", mpi_wtime() > 500);
    }
    if (rank == 1) {
        compute(100);
        mpi_recv(buf, 1, 0, 5, MPI_COMM_WORLD);
    }
    mpi_finalize();
"""
        result = run_pair(body, sync_sends=True)
        assert result.printed_lines() == ["sent at True"]

    def test_sync_unmatched_send_deadlocks(self):
        body = """
    var buf[1];
    if (rank == 0) { mpi_send(buf, 1, 1, 5, MPI_COMM_WORLD); }
    mpi_finalize();
"""
        result = run_pair(body, sync_sends=True)
        assert result.deadlocked


class TestNonblocking:
    def test_isend_irecv_wait(self):
        body = """
    var buf[2];
    if (rank == 0) {
        buf[0] = 7;
        var sreq = mpi_isend(buf, 2, 1, 3, MPI_COMM_WORLD);
        mpi_wait(sreq);
    }
    if (rank == 1) {
        var rreq = mpi_irecv(buf, 2, 0, 3, MPI_COMM_WORLD);
        mpi_wait(rreq);
        print(buf[0]);
    }
    mpi_finalize();
"""
        assert run_pair(body).printed_lines() == ["7.0"]

    def test_test_polls_until_done(self):
        body = """
    var buf[1];
    if (rank == 0) {
        compute(50);
        mpi_send(buf, 1, 1, 3, MPI_COMM_WORLD);
    }
    if (rank == 1) {
        var req = mpi_irecv(buf, 1, 0, 3, MPI_COMM_WORLD);
        var spins = 0;
        while (mpi_test(req) == 0) { spins = spins + 1; compute(5); }
        print(spins > 0);
    }
    mpi_finalize();
"""
        assert run_pair(body).printed_lines() == ["True"]

    def test_irecv_requires_array_buffer(self):
        body = """
    var x = 0;
    var req = mpi_irecv(x, 1, 0, 3, MPI_COMM_WORLD);
"""
        result = run_pair(body, nprocs=1)
        assert any("array receive buffer" in n for n in result.notes)

    def test_wait_on_freed_request_noted(self):
        body = """
    var buf[1];
    if (rank == 0) { mpi_send(buf, 1, 1, 3, MPI_COMM_WORLD); }
    if (rank == 1) {
        var req = mpi_irecv(buf, 1, 0, 3, MPI_COMM_WORLD);
        mpi_wait(req);
        mpi_wait(req);
    }
    mpi_finalize();
"""
        result = run_pair(body)
        assert any("unknown/freed request" in n for n in result.notes)


class TestProbe:
    def test_probe_returns_source_without_consuming(self):
        body = """
    var buf[1];
    if (rank == 0) { mpi_send(buf, 1, 1, 8, MPI_COMM_WORLD); }
    if (rank == 1) {
        print(mpi_probe(0, 8, MPI_COMM_WORLD));
        print(mpi_probe(0, 8, MPI_COMM_WORLD));
        mpi_recv(buf, 1, 0, 8, MPI_COMM_WORLD);
    }
    mpi_finalize();
"""
        assert run_pair(body).printed_lines() == ["0", "0"]

    def test_iprobe_false_then_true(self):
        body = """
    var buf[1];
    if (rank == 0) {
        compute(100);
        mpi_send(buf, 1, 1, 8, MPI_COMM_WORLD);
    }
    if (rank == 1) {
        var hits = 0;
        var polls = 0;
        while (hits == 0) {
            hits = mpi_iprobe(0, 8, MPI_COMM_WORLD);
            polls = polls + 1;
            compute(2);
        }
        print(polls > 1);
        mpi_recv(buf, 1, 0, 8, MPI_COMM_WORLD);
    }
    mpi_finalize();
"""
        assert run_pair(body).printed_lines() == ["True"]

    def test_probe_blocks_until_message(self):
        body = """
    var buf[1];
    if (rank == 0) {
        compute(100);
        mpi_send(buf, 1, 1, 8, MPI_COMM_WORLD);
    }
    if (rank == 1) {
        mpi_probe(0, 8, MPI_COMM_WORLD);
        print(mpi_wtime() >= 1000);
        mpi_recv(buf, 1, 0, 8, MPI_COMM_WORLD);
    }
    mpi_finalize();
"""
        assert run_pair(body).printed_lines() == ["True"]


class TestCommManagement:
    def test_comm_dup_isolates_traffic(self):
        body = """
    var buf[1];
    var dup = mpi_comm_dup(MPI_COMM_WORLD);
    if (rank == 0) {
        buf[0] = 5; mpi_send(buf, 1, 1, 2, dup);
        buf[0] = 6; mpi_send(buf, 1, 1, 2, MPI_COMM_WORLD);
    }
    if (rank == 1) {
        mpi_recv(buf, 1, 0, 2, MPI_COMM_WORLD); print(buf[0]);
        mpi_recv(buf, 1, 0, 2, dup); print(buf[0]);
    }
    mpi_finalize();
"""
        assert run_pair(body).printed_lines() == ["6.0", "5.0"]

    def test_comm_split_pairs(self):
        body = """
    var buf[1];
    var sub = mpi_comm_split(MPI_COMM_WORLD, rank / 2, rank);
    var subrank = mpi_comm_rank(sub);
    var subsize = mpi_comm_size(sub);
    print(subrank, subsize);
    mpi_finalize();
"""
        result = run_pair(body, nprocs=4)
        assert sorted(result.printed_lines()) == ["0 2", "0 2", "1 2", "1 2"]
