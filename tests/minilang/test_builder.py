"""Builder-combinator and AST-utility tests."""

import pytest

from repro.minilang import ast_equal, clone, parse
from repro.minilang import ast_nodes as A
from repro.minilang import builder as B


class TestExprBuilders:
    def test_expr_coercion_int(self):
        assert isinstance(B.expr(3), A.IntLit)

    def test_expr_coercion_float(self):
        assert isinstance(B.expr(2.5), A.FloatLit)

    def test_expr_coercion_bool_before_int(self):
        node = B.expr(True)
        assert isinstance(node, A.BoolLit)

    def test_expr_string_is_name(self):
        assert isinstance(B.expr("x"), A.Name)

    def test_lit_string_is_literal(self):
        assert isinstance(B.lit("x"), A.StrLit)

    def test_expr_rejects_unknown(self):
        with pytest.raises(TypeError):
            B.expr(object())

    def test_binop_helpers(self):
        node = B.add(1, B.mul("x", 2))
        assert node.op == "+" and node.right.op == "*"

    def test_comparison_helpers(self):
        assert B.eq("a", 1).op == "=="
        assert B.lt("a", 1).op == "<"
        assert B.mod("a", 2).op == "%"

    def test_call_builder(self):
        node = B.call("f", 1, "x")
        assert node.name == "f" and len(node.args) == 2

    def test_idx_builder(self):
        node = B.idx("a", B.add("i", 1))
        assert isinstance(node, A.Index)


class TestStmtBuilders:
    def test_for_range_shape(self):
        loop = B.for_range("i", 0, 10, [B.callstmt("compute", 1)])
        assert isinstance(loop.init, A.VarDecl)
        assert loop.cond.op == "<"
        assert isinstance(loop.step, A.Assign)

    def test_parallel_builder(self):
        node = B.parallel([B.barrier()], num_threads=2, private=["i"])
        assert isinstance(node, A.OmpParallel)
        assert node.num_threads.value == 2
        assert node.private == ["i"]

    def test_omp_for_builder(self):
        node = B.omp_for("i", 0, 8, [B.callstmt("compute", 1)], schedule="dynamic")
        assert node.schedule == "dynamic"

    def test_sections_builder(self):
        node = B.sections([B.callstmt("compute", 1)], [B.callstmt("compute", 2)])
        assert len(node.sections) == 2

    def test_if_builder(self):
        node = B.if_(B.eq("x", 0), [B.assign("y", 1)], [B.assign("y", 2)])
        assert isinstance(node.els, A.Block)

    def test_program_builder_roundtrips_with_parser(self):
        prog = B.program(
            "built",
            [B.func("main", [], [B.decl("x", 1), B.assign("x", B.add("x", 1))])],
        )
        from repro.minilang import print_program

        reparsed = parse(print_program(prog))
        assert ast_equal(prog, reparsed)


class TestCloneAndEquality:
    def test_clone_is_structurally_equal(self):
        prog = parse("program p;\nfunc main() { var x = 1; compute(x); }")
        copy = clone(prog)
        assert ast_equal(prog, copy)

    def test_clone_has_fresh_node_ids(self):
        prog = parse("program p;\nfunc main() { var x = 1; }")
        copy = clone(prog)
        original_ids = {n.nid for n in prog.walk()}
        copy_ids = {n.nid for n in copy.walk()}
        assert original_ids.isdisjoint(copy_ids)

    def test_clone_mutation_does_not_affect_original(self):
        prog = parse("program p;\nfunc main() { mpi_finalize(); }")
        copy = clone(prog)
        for node in copy.walk():
            if getattr(node, "name", "") == "mpi_finalize":
                node.name = "hmpi_finalize"
        names = {getattr(n, "name", "") for n in prog.walk() if isinstance(n, A.CallExpr)}
        assert "hmpi_finalize" not in names

    def test_ast_equal_ignores_locations(self):
        a = parse("program p;\nfunc main() { var x = 1; }")
        b = parse("program p;\n\n\nfunc main() {\n var x = 1;\n}")
        assert ast_equal(a, b)

    def test_ast_equal_detects_value_difference(self):
        a = parse("program p;\nfunc main() { var x = 1; }")
        b = parse("program p;\nfunc main() { var x = 2; }")
        assert not ast_equal(a, b)

    def test_ast_equal_detects_structural_difference(self):
        a = parse("program p;\nfunc main() { var x = 1; }")
        b = parse("program p;\nfunc main() { var x = 1; var y = 2; }")
        assert not ast_equal(a, b)

    def test_ast_equal_detects_type_difference(self):
        a = parse("program p;\nfunc main() { omp barrier; }")
        b = parse("program p;\nfunc main() { compute(1); }")
        assert not ast_equal(a, b)


class TestWalk:
    def test_walk_preorder_includes_all(self):
        prog = parse("program p;\nfunc main() { if (a) { b = f(1); } }")
        types = [type(n).__name__ for n in prog.walk()]
        assert types[0] == "Program"
        for expected in ("FuncDef", "Block", "If", "Name", "Assign", "CallExpr", "IntLit"):
            assert expected in types
