"""Pretty-printer tests, including full round-trip over every workload."""

import pytest

from repro.minilang import ast_equal, parse, print_expr, print_program, print_stmt
from repro.workloads.case_studies import (
    CASE_STUDY_1,
    CASE_STUDY_2,
    CASE_STUDY_2_FIXED,
    SAFE_FUNNELED,
)
from repro.workloads.npb import bt_mz_source, lu_mz_source, sp_mz_source


def roundtrip(source: str) -> None:
    prog = parse(source)
    printed = print_program(prog)
    reparsed = parse(printed)
    assert ast_equal(prog, reparsed), "print -> parse changed the AST"
    assert print_program(reparsed) == printed, "printing is not a fixpoint"


class TestRoundTrip:
    def test_minimal_program(self):
        roundtrip("program p;\nfunc main() { }")

    def test_expressions(self):
        roundtrip(
            "program p;\nfunc main() { var x = -(1 + 2) * 3 % 4; "
            "var y = a < b && !(c >= d) || e != f; }"
        )

    def test_control_flow(self):
        roundtrip(
            "program p;\nfunc main() {\n"
            "  if (a) { b = 1; } else if (c) { b = 2; } else { b = 3; }\n"
            "  while (b < 10) { b = b + 1; }\n"
            "  for (var i = 0; i < 4; i = i + 1) { compute(i); }\n"
            "}"
        )

    def test_strings_with_escapes(self):
        roundtrip('program p;\nfunc main() { print("a\\"b", "c\\nd"); }')

    def test_float_literals(self):
        roundtrip("program p;\nfunc main() { var x = 1.5; var y = 2.0; }")

    def test_omp_constructs(self):
        roundtrip(
            "program p;\nfunc main() {\n"
            "  omp parallel num_threads(2) private(i) firstprivate(j) {\n"
            "    omp for schedule(dynamic, 3) nowait for (var i = 0; i < 8; i = i + 1) { }\n"
            "    omp sections { omp section { } omp section { compute(1); } }\n"
            "    omp critical (c) { x = 1; }\n"
            "    omp barrier;\n"
            "    omp single nowait { }\n"
            "    omp master { }\n"
            "    omp atomic x = x + 1;\n"
            "  }\n"
            "}"
        )

    @pytest.mark.parametrize(
        "source",
        [CASE_STUDY_1, CASE_STUDY_2, CASE_STUDY_2_FIXED, SAFE_FUNNELED],
        ids=["cs1", "cs2", "cs2fixed", "funneled"],
    )
    def test_case_studies_roundtrip(self, source):
        roundtrip(source)

    @pytest.mark.parametrize("gen", [lu_mz_source, bt_mz_source, sp_mz_source],
                             ids=["lu", "bt", "sp"])
    @pytest.mark.parametrize("inject", [True, False])
    def test_npb_benchmarks_roundtrip(self, gen, inject):
        roundtrip(gen(inject=inject))


class TestFragments:
    def test_print_expr(self):
        prog = parse("program p;\nfunc main() { x = (1 + 2) * n; }")
        expr = prog.main.body.stmts[0].value
        assert print_expr(expr) == "((1 + 2) * n)"

    def test_print_stmt(self):
        prog = parse("program p;\nfunc main() { omp barrier; }")
        assert print_stmt(prog.main.body.stmts[0]) == "omp barrier;"

    def test_instrumented_names_survive(self):
        # Printing an instrumented program keeps hmpi_ names parseable.
        prog = parse("program p;\nfunc main() { mpi_finalize(); }")
        for node in prog.walk():
            if getattr(node, "name", "") == "mpi_finalize":
                node.name = "hmpi_finalize"
        printed = print_program(prog)
        assert "hmpi_finalize()" in printed
        parse(printed)
