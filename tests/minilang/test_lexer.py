"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.minilang.lexer import Token, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)]


def texts(src):
    return [t.text for t in tokenize(src) if t.kind != "eof"]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == "eof"

    def test_integer_literal(self):
        tok = tokenize("42")[0]
        assert (tok.kind, tok.text) == ("int", "42")

    def test_float_literal(self):
        tok = tokenize("3.25")[0]
        assert (tok.kind, tok.text) == ("float", "3.25")

    def test_float_with_exponent(self):
        assert tokenize("1e3")[0].kind == "float"
        assert tokenize("2.5e-2")[0].kind == "float"
        assert tokenize("7E+4")[0].kind == "float"

    def test_integer_not_confused_with_member_dot(self):
        # '5.' without digits after the dot: '5' then error or punct —
        # our grammar has no bare dot, so this must raise.
        with pytest.raises(LexError):
            tokenize("5.")

    def test_identifier(self):
        tok = tokenize("foo_bar2")[0]
        assert (tok.kind, tok.text) == ("ident", "foo_bar2")

    def test_keywords_recognized(self):
        for kw in ("program", "func", "var", "if", "else", "while", "for",
                   "return", "omp", "parallel", "critical", "barrier"):
            assert tokenize(kw)[0].kind == "keyword", kw

    def test_true_false_are_keywords(self):
        assert tokenize("true")[0].kind == "keyword"
        assert tokenize("false")[0].kind == "keyword"

    def test_string_literal(self):
        tok = tokenize('"hello"')[0]
        assert (tok.kind, tok.text) == ("string", "hello")

    def test_string_escapes(self):
        assert tokenize(r'"a\nb"')[0].text == "a\nb"
        assert tokenize(r'"a\tb"')[0].text == "a\tb"
        assert tokenize(r'"q\"q"')[0].text == 'q"q'

    def test_single_quoted_string(self):
        assert tokenize("'abc'")[0].text == "abc"


class TestOperators:
    def test_two_char_operators_are_single_tokens(self):
        for op in ("&&", "||", "==", "!=", "<=", ">="):
            toks = tokenize(op)
            assert toks[0].text == op and toks[0].kind == "op"
            assert toks[1].kind == "eof"

    def test_maximal_munch(self):
        # '<=' must not lex as '<' '='.
        assert texts("a<=b") == ["a", "<=", "b"]

    def test_arithmetic_expression(self):
        assert texts("1+2*3") == ["1", "+", "2", "*", "3"]

    def test_punctuation(self):
        assert texts("f(a, b[1]);") == ["f", "(", "a", ",", "b", "[", "1", "]", ")", ";"]


class TestTrivia:
    def test_line_comment_skipped(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"no close')

    def test_newline_in_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"a\nb"')

    def test_whitespace_variants(self):
        assert texts("a\tb\r\nc  d") == ["a", "b", "c", "d"]


class TestPositions:
    def test_line_and_column_tracking(self):
        toks = tokenize("ab\n  cd")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_column_after_comment(self):
        toks = tokenize("/* c */ x")
        assert toks[0].text == "x"
        assert toks[0].col == 9

    def test_error_position_reported(self):
        with pytest.raises(LexError) as exc:
            tokenize("ok\n  @")
        assert exc.value.line == 2
        assert exc.value.col == 3

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_invalid_numeric_suffix(self):
        with pytest.raises(LexError):
            tokenize("12abc")
