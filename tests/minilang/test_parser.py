"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.minilang import ast_nodes as A
from repro.minilang import parse


def parse_main(body: str) -> A.Block:
    prog = parse(f"program t;\nfunc main() {{\n{body}\n}}")
    return prog.main.body


def first_stmt(body: str) -> A.Stmt:
    return parse_main(body).stmts[0]


class TestTopLevel:
    def test_program_name(self):
        assert parse("program hello;\nfunc main() { }").name == "hello"

    def test_globals_and_functions(self):
        prog = parse("program p;\nvar g = 1;\nvar arr[8];\nfunc main() { }")
        assert [g.name for g in prog.globals] == ["g", "arr"]
        assert prog.globals[1].is_array

    def test_function_params(self):
        prog = parse("program p;\nfunc f(a, b, c) { }\nfunc main() { }")
        assert prog.function("f").params == ["a", "b", "c"]

    def test_missing_program_keyword(self):
        with pytest.raises(ParseError):
            parse("func main() { }")

    def test_junk_at_top_level(self):
        with pytest.raises(ParseError):
            parse("program p;\n42;")

    def test_function_lookup_missing(self):
        prog = parse("program p;\nfunc main() { }")
        with pytest.raises(KeyError):
            prog.function("nope")


class TestStatements:
    def test_var_decl_with_init(self):
        stmt = first_stmt("var x = 5;")
        assert isinstance(stmt, A.VarDecl)
        assert isinstance(stmt.init, A.IntLit) and stmt.init.value == 5

    def test_array_decl(self):
        stmt = first_stmt("var a[10];")
        assert stmt.is_array
        assert stmt.size.value == 10

    def test_assignment(self):
        stmt = first_stmt("x = 1;")
        assert isinstance(stmt, A.Assign)
        assert isinstance(stmt.target, A.Name)

    def test_array_element_assignment(self):
        stmt = first_stmt("a[i + 1] = 2;")
        assert isinstance(stmt.target, A.Index)

    def test_bare_non_call_expression_rejected(self):
        with pytest.raises(ParseError):
            parse_main("x + 1;")

    def test_call_statement(self):
        stmt = first_stmt("compute(3);")
        assert isinstance(stmt, A.ExprStmt)
        assert stmt.expr.name == "compute"

    def test_if_else(self):
        stmt = first_stmt("if (x) { y = 1; } else { y = 2; }")
        assert isinstance(stmt, A.If)
        assert isinstance(stmt.els, A.Block)

    def test_else_if_normalized_to_block(self):
        stmt = first_stmt("if (a) { } else if (b) { } else { }")
        assert isinstance(stmt.els, A.Block)
        assert isinstance(stmt.els.stmts[0], A.If)

    def test_while(self):
        stmt = first_stmt("while (x < 3) { x = x + 1; }")
        assert isinstance(stmt, A.While)

    def test_for_full_header(self):
        stmt = first_stmt("for (var i = 0; i < 10; i = i + 1) { }")
        assert isinstance(stmt, A.For)
        assert isinstance(stmt.init, A.VarDecl)
        assert stmt.cond.op == "<"

    def test_for_empty_header_parts(self):
        stmt = first_stmt("for (;;) { }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_return_value(self):
        stmt = first_stmt("return 1 + 2;")
        assert isinstance(stmt, A.Return)
        assert isinstance(stmt.value, A.Binary)

    def test_bare_return(self):
        assert first_stmt("return;").value is None

    def test_print(self):
        stmt = first_stmt('print("x =", x);')
        assert isinstance(stmt, A.Print)
        assert len(stmt.args) == 2

    def test_assert(self):
        stmt = first_stmt("assert(x == 1);")
        assert isinstance(stmt, A.AssertStmt)

    def test_nested_block(self):
        stmt = first_stmt("{ var x = 1; }")
        assert isinstance(stmt, A.Block)

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("program p;\nfunc main() { var x = 1;")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        stmt = first_stmt("x = 1 + 2 * 3;")
        assert stmt.value.op == "+"
        assert stmt.value.right.op == "*"

    def test_precedence_comparison_over_logic(self):
        stmt = first_stmt("x = a < b && c > d;")
        assert stmt.value.op == "&&"

    def test_or_binds_loosest(self):
        stmt = first_stmt("x = a || b && c;")
        assert stmt.value.op == "||"

    def test_parentheses_override(self):
        stmt = first_stmt("x = (1 + 2) * 3;")
        assert stmt.value.op == "*"

    def test_unary_minus(self):
        stmt = first_stmt("x = -y;")
        assert isinstance(stmt.value, A.Unary)

    def test_unary_not(self):
        stmt = first_stmt("x = !y;")
        assert stmt.value.op == "!"

    def test_left_associativity(self):
        stmt = first_stmt("x = 10 - 3 - 2;")
        # (10 - 3) - 2
        assert stmt.value.left.op == "-"

    def test_call_in_expression(self):
        stmt = first_stmt("x = f(1, g(2));")
        assert stmt.value.name == "f"
        assert stmt.value.args[1].name == "g"

    def test_chained_indexing(self):
        stmt = first_stmt("x = a[1];")
        assert isinstance(stmt.value, A.Index)

    def test_bool_literals(self):
        stmt = first_stmt("x = true;")
        assert isinstance(stmt.value, A.BoolLit) and stmt.value.value is True


class TestOmpDirectives:
    def test_parallel_with_clauses(self):
        stmt = first_stmt(
            "omp parallel num_threads(4) private(a, b) shared(c) firstprivate(d) { }"
        )
        assert isinstance(stmt, A.OmpParallel)
        assert stmt.num_threads.value == 4
        assert stmt.private == ["a", "b"]
        assert stmt.shared == ["c"]
        assert stmt.firstprivate == ["d"]

    def test_omp_for_with_schedule(self):
        stmt = first_stmt(
            "omp parallel { omp for schedule(dynamic, 2) nowait "
            "for (var i = 0; i < 4; i = i + 1) { } }"
        )
        inner = stmt.body.stmts[0]
        assert isinstance(inner, A.OmpFor)
        assert inner.schedule == "dynamic"
        assert inner.chunk.value == 2
        assert inner.nowait

    def test_bad_schedule_kind(self):
        with pytest.raises(ParseError):
            parse_main(
                "omp parallel { omp for schedule(guided) "
                "for (var i = 0; i < 4; i = i + 1) { } }"
            )

    def test_combined_parallel_for(self):
        stmt = first_stmt("omp parallel for for (var i = 0; i < 2; i = i + 1) { }")
        assert isinstance(stmt, A.OmpParallel)
        assert isinstance(stmt.body.stmts[0], A.OmpFor)

    def test_combined_parallel_for_with_num_threads(self):
        stmt = first_stmt(
            "omp parallel num_threads(2) for for (var i = 0; i < 2; i = i + 1) { }"
        )
        assert isinstance(stmt, A.OmpParallel)
        assert stmt.num_threads.value == 2

    def test_sections(self):
        stmt = first_stmt(
            "omp parallel { omp sections { omp section { } omp section { } } }"
        )
        inner = stmt.body.stmts[0]
        assert isinstance(inner, A.OmpSections)
        assert len(inner.sections) == 2

    def test_empty_sections_rejected(self):
        with pytest.raises(ParseError):
            parse_main("omp parallel { omp sections { } }")

    def test_named_critical(self):
        stmt = first_stmt("omp critical (mylock) { x = 1; }")
        assert isinstance(stmt, A.OmpCritical)
        assert stmt.name == "mylock"

    def test_anonymous_critical(self):
        stmt = first_stmt("omp critical { x = 1; }")
        assert stmt.name == ""

    def test_barrier(self):
        assert isinstance(first_stmt("omp barrier;"), A.OmpBarrier)

    def test_single_nowait(self):
        stmt = first_stmt("omp single nowait { }")
        assert isinstance(stmt, A.OmpSingle) and stmt.nowait

    def test_master(self):
        assert isinstance(first_stmt("omp master { }"), A.OmpMaster)

    def test_atomic(self):
        stmt = first_stmt("omp atomic x = x + 1;")
        assert isinstance(stmt, A.OmpAtomic)

    def test_atomic_requires_assignment(self):
        with pytest.raises(ParseError):
            parse_main("omp atomic f();")

    def test_unknown_directive(self):
        with pytest.raises(ParseError):
            parse_main("omp taskwait;")


class TestLocations:
    def test_statement_locations_recorded(self):
        prog = parse("program p;\nfunc main() {\n    var x = 1;\n}")
        decl = prog.main.body.stmts[0]
        assert decl.loc.line == 3

    def test_node_ids_unique(self):
        prog = parse("program p;\nfunc main() { var x = 1; var y = 2; }")
        nids = [n.nid for n in prog.walk()]
        assert len(nids) == len(set(nids))
