"""Program-validation tests."""

import pytest

from repro.errors import ValidationError
from repro.minilang import count_nodes, parse, validate


def check(src, **kw):
    validate(parse(src), **kw)


class TestValidation:
    def test_valid_program_passes(self):
        check("program p;\nfunc main() { omp parallel { omp barrier; } }")

    def test_missing_main_rejected(self):
        with pytest.raises(ValidationError, match="main"):
            check("program p;\nfunc helper() { }")

    def test_missing_main_allowed_when_not_required(self):
        check("program p;\nfunc helper() { }", require_main=False)

    def test_duplicate_function_rejected(self):
        with pytest.raises(ValidationError, match="duplicate function"):
            check("program p;\nfunc main() { }\nfunc main() { }")

    def test_duplicate_params_rejected(self):
        with pytest.raises(ValidationError, match="duplicate parameters"):
            check("program p;\nfunc f(a, a) { }\nfunc main() { }")

    def test_duplicate_globals_rejected(self):
        with pytest.raises(ValidationError, match="duplicate global"):
            check("program p;\nvar g = 1;\nvar g = 2;\nfunc main() { }")

    def test_closely_nested_worksharing_rejected(self):
        with pytest.raises(ValidationError, match="nested"):
            check(
                "program p;\nfunc main() { omp parallel {\n"
                "omp for for (var i = 0; i < 2; i = i + 1) {\n"
                "  omp single { }\n"
                "} } }"
            )

    def test_worksharing_inside_nested_parallel_is_fine(self):
        check(
            "program p;\nfunc main() { omp parallel {\n"
            "omp for for (var i = 0; i < 2; i = i + 1) {\n"
            "  omp parallel { omp single { } }\n"
            "} } }"
        )

    def test_nonpositive_num_threads_rejected(self):
        with pytest.raises(ValidationError, match="num_threads"):
            check("program p;\nfunc main() { omp parallel num_threads(0) { } }")

    def test_count_nodes(self):
        prog = parse("program p;\nfunc main() { var x = 1; }")
        assert count_nodes(prog) > 3
