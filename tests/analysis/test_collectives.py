"""Static collective-matching / barrier-divergence pass tests."""

from repro.analysis.cfg import build_cfg
from repro.analysis.static_ import (
    STATIC_REPORT_SCHEMA_VERSION,
    check_report_schema,
    find_collective_divergence,
    run_static_analysis,
)
from repro.analysis.static_.collectives import (
    COLLECTIVE_COLORS,
    KIND_BARRIER_DIVERGENCE,
    KIND_COLLECTIVE_ORDER,
    KIND_MPI_COLLECTIVE,
    PRUNE_DIV_BALANCED,
    PRUNE_DIV_SERIAL,
    PRUNE_DIV_UNIFORM,
)
from repro.analysis.static_.dataflow import (
    branch_taints,
    expr_thread_dependent,
    solve_thread_dependence,
)
from repro.minilang import ast_nodes as A
from repro.minilang import parse

PROG = "program t;\n"


def divergence(src):
    return find_collective_divergence(parse(src))


def kinds(report):
    return [c.kind for c in report.candidates]


class TestThreadDependence:
    def test_thread_num_call_taints_assigned_var(self):
        prog = parse(PROG + """
func main() {
    omp parallel num_threads(2) {
        var tid = omp_get_thread_num();
        var twice = tid * 2;
        var clean = 7;
    }
}""")
        fn = prog.function("main")
        result = solve_thread_dependence(fn, build_cfg(fn))
        exit_fact = result.fact_after(result.cfg.exit)
        assert "tid" in exit_fact and "twice" in exit_fact
        assert "clean" not in exit_fact

    def test_reassignment_kills_taint(self):
        prog = parse(PROG + """
func main() {
    omp parallel num_threads(2) {
        var tid = omp_get_thread_num();
        tid = 0;
    }
}""")
        fn = prog.function("main")
        result = solve_thread_dependence(fn, build_cfg(fn))
        assert "tid" not in result.fact_after(result.cfg.exit)

    def test_branch_taints_keyed_by_branch_nid(self):
        prog = parse(PROG + """
func main() {
    omp parallel num_threads(2) {
        var tid = omp_get_thread_num();
        if (tid == 0) { compute(1); }
    }
}""")
        fn = prog.function("main")
        taints = branch_taints(fn, build_cfg(fn))
        branches = [n for n in fn.body.walk() if isinstance(n, A.If)]
        assert len(branches) == 1
        cond = branches[0].cond
        assert expr_thread_dependent(cond, taints[branches[0].nid])


class TestStaticCandidates:
    def test_divergent_barrier_counts(self):
        report = divergence(PROG + """
func main() {
    omp parallel num_threads(2) {
        var tid = omp_get_thread_num();
        if (tid == 0) { omp barrier; omp barrier; } else { omp barrier; }
    }
}""")
        assert kinds(report) == [KIND_BARRIER_DIVERGENCE]

    def test_equal_length_different_colors_is_order_mismatch(self):
        report = divergence(PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        var tid = omp_get_thread_num();
        if (tid == 0) {
            omp barrier;
            omp single nowait { x = 1; }
        } else {
            omp single nowait { x = 2; }
            omp barrier;
        }
    }
}""")
        assert kinds(report) == [KIND_COLLECTIVE_ORDER]

    def test_mpi_collective_under_divergent_branch(self):
        report = divergence(PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        var tid = omp_get_thread_num();
        if (tid == 0) { x = mpi_allreduce(1, MPI_SUM, MPI_COMM_WORLD); }
    }
}""")
        assert kinds(report) == [KIND_MPI_COLLECTIVE]
        (cand,) = report.candidates
        assert any(s.op == "mpi_allreduce" for s in cand.sites)
        assert cand.monitored_locs  # the dynamic pass has sites to watch

    def test_balanced_arms_pruned_even_at_different_locs(self):
        report = divergence(PROG + """
func main() {
    omp parallel num_threads(2) {
        var tid = omp_get_thread_num();
        if (tid == 0) { omp barrier; } else { omp barrier; }
    }
}""")
        assert not report.candidates
        assert report.pruned[PRUNE_DIV_BALANCED] == 1

    def test_uniform_branch_pruned(self):
        report = divergence(PROG + """
func main() {
    var flag = 1;
    omp parallel num_threads(2) {
        if (flag == 1) { omp barrier; }
    }
}""")
        assert not report.candidates
        assert report.pruned[PRUNE_DIV_UNIFORM] == 1

    def test_funneled_mpi_collective_pruned_as_serial(self):
        report = divergence(PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        omp master { x = mpi_allreduce(1, MPI_SUM, MPI_COMM_WORLD); }
        omp barrier;
    }
}""")
        assert not report.candidates
        assert report.pruned[PRUNE_DIV_SERIAL] == 1

    def test_omp_collective_under_master_is_candidate(self):
        report = divergence(PROG + """
func main() {
    omp parallel num_threads(2) {
        omp master { omp barrier; }
    }
}""")
        assert kinds(report) == [KIND_BARRIER_DIVERGENCE]

    def test_serial_mpi_collective_outside_parallel_ignored(self):
        report = divergence(PROG + """
func main() {
    var x = mpi_allreduce(1, MPI_SUM, MPI_COMM_WORLD);
}""")
        assert not report.candidates
        assert not report.sites

    def test_thread_dependent_loop_trip_count(self):
        report = divergence(PROG + """
func main() {
    omp parallel num_threads(2) {
        var tid = omp_get_thread_num();
        for (var i = 0; i < tid; i = i + 1) {
            omp barrier;
        }
    }
}""")
        assert kinds(report) == [KIND_BARRIER_DIVERGENCE]

    def test_uniform_loop_is_opaque_not_candidate(self):
        report = divergence(PROG + """
func main() {
    omp parallel num_threads(2) {
        for (var i = 0; i < 3; i = i + 1) {
            omp barrier;
        }
    }
}""")
        assert not report.candidates

    def test_color_table_matches_parcoach_exemplar(self):
        assert COLLECTIVE_COLORS["barrier"] == 36
        assert COLLECTIVE_COLORS["region-end"] == 1
        assert COLLECTIVE_COLORS["return"] == 38
        assert COLLECTIVE_COLORS["single"] == 3
        assert COLLECTIVE_COLORS["sections"] == 4
        assert COLLECTIVE_COLORS["for"] == 5
        assert COLLECTIVE_COLORS["mpi"] == 2


DIVERGENT = PROG + """
func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    omp parallel num_threads(2) {
        var tid = omp_get_thread_num();
        if (tid == 0) { omp barrier; omp barrier; } else { omp barrier; }
    }
    mpi_finalize();
}"""


class TestReportIntegration:
    def test_report_carries_collectives_section(self):
        report = run_static_analysis(parse(DIVERGENT))
        assert report.collectives is not None
        assert len(report.collectives.candidates) == 1
        assert "collective-divergence candidates: 1" in report.summary()

    def test_collectives_flag_off(self):
        report = run_static_analysis(parse(DIVERGENT), collectives=False)
        assert report.collectives is None
        payload = report.as_dict()
        assert payload["collectives"] is None

    def test_prune_counts_merge_divergence_kinds(self):
        src = PROG + """
func main() {
    omp parallel num_threads(2) {
        var tid = omp_get_thread_num();
        if (tid == 0) { omp barrier; } else { omp barrier; }
    }
}"""
        report = run_static_analysis(parse(src))
        assert report.prune_counts().get(PRUNE_DIV_BALANCED) == 1

    def test_as_dict_has_schema_version(self):
        payload = run_static_analysis(parse(DIVERGENT)).as_dict()
        assert payload["schema_version"] == STATIC_REPORT_SCHEMA_VERSION
        assert payload["collectives"]["candidate_count"] == 1
        assert payload["collectives"]["monitored_locs"]


class TestReportSchema:
    def test_current_payload_is_clean(self):
        payload = run_static_analysis(parse(DIVERGENT)).as_dict()
        assert check_report_schema(payload) == []

    def test_missing_version_warns_not_crashes(self):
        problems = check_report_schema({"program": "t"})
        assert any("schema_version" in p for p in problems)

    def test_version_mismatch_warns(self):
        problems = check_report_schema(
            {"schema_version": STATIC_REPORT_SCHEMA_VERSION + 41}
        )
        assert any("version" in p for p in problems)

    def test_unknown_section_warns_by_name(self):
        payload = run_static_analysis(parse(DIVERGENT)).as_dict()
        payload["from_the_future"] = {"x": 1}
        problems = check_report_schema(payload)
        assert any("from_the_future" in p for p in problems)
        # warn, never raise: consumers keep reading the known sections
        assert isinstance(problems, list)

    def test_pre_v3_flat_prunes_warns(self):
        problems = check_report_schema({"schema_version": 2})
        assert any("flat merged dict" in p for p in problems)

    def test_v3_prunes_missing_subsections_warns(self):
        payload = run_static_analysis(parse(DIVERGENT)).as_dict()
        del payload["prunes"]["collectives"]
        problems = check_report_schema(payload)
        assert any("collectives" in p and "prunes" in p for p in problems)

    def test_v3_prunes_sections_complete_and_summed(self):
        payload = run_static_analysis(parse(DIVERGENT)).as_dict()
        prunes = payload["prunes"]
        assert set(prunes) == {"dataflow", "races", "collectives", "total"}
        assert prunes["total"] == sum(
            sum(section.values())
            for key, section in prunes.items()
            if key != "total"
        )
