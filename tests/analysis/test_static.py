"""Static analysis: site discovery, instrumentation, thread-level checks,
checklist generation."""

import pytest

from repro.analysis.static_ import (
    check_thread_level,
    collect_sites,
    infer_thread_level,
    instrument_program,
    run_static_analysis,
)
from repro.analysis.static_.checklist import build_checklist
from repro.events.event import MonitoredKind
from repro.minilang import ast_nodes as A
from repro.minilang import parse, print_program
from repro.mpi.constants import MPI_THREAD_MULTIPLE, MPI_THREAD_SINGLE


HYBRID = """
program h;
var buf[4];
func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    mpi_barrier(MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        mpi_recv(buf, 1, 0, 5, MPI_COMM_WORLD);
        omp critical (guard) {
            mpi_send(buf, 1, 0, 6, MPI_COMM_WORLD);
        }
        omp master {
            mpi_probe(0, 7, MPI_COMM_WORLD);
        }
    }
    mpi_finalize();
}
"""


class TestSiteDiscovery:
    def test_all_sites_found(self):
        sites = collect_sites(parse(HYBRID))
        ops = sorted(s.op for s in sites)
        assert ops == sorted([
            "mpi_init_thread", "mpi_comm_rank", "mpi_barrier",
            "mpi_recv", "mpi_send", "mpi_probe", "mpi_finalize",
        ])

    def test_hybrid_classification(self):
        sites = {s.op: s for s in collect_sites(parse(HYBRID))}
        assert sites["mpi_recv"].in_parallel
        assert sites["mpi_send"].in_parallel
        assert not sites["mpi_barrier"].in_parallel
        assert not sites["mpi_finalize"].in_parallel

    def test_enclosing_criticals_tracked(self):
        sites = {s.op: s for s in collect_sites(parse(HYBRID))}
        assert sites["mpi_send"].criticals == ("guard",)
        assert sites["mpi_recv"].criticals == ()

    def test_master_guard_tracked(self):
        sites = {s.op: s for s in collect_sites(parse(HYBRID))}
        assert sites["mpi_probe"].in_master
        assert not sites["mpi_recv"].in_master

    def test_static_args_extracted(self):
        sites = {s.op: s for s in collect_sites(parse(HYBRID))}
        recv = sites["mpi_recv"]
        # (buf, 1, 0, 5, MPI_COMM_WORLD) -> indices 1..4 statically known
        assert recv.static_args[2] == 0
        assert recv.static_args[3] == 5
        assert recv.static_args[4] == 0  # MPI_COMM_WORLD

    def test_interprocedural_propagation(self):
        src = """
program ip;
func talk() { mpi_barrier(MPI_COMM_WORLD); return 0; }
func middle() { talk(); return 0; }
func main() {
    mpi_init();
    omp parallel { middle(); }
    mpi_finalize();
}
"""
        sites = {s.op: s for s in collect_sites(parse(src), interprocedural=True)}
        assert sites["mpi_barrier"].in_parallel
        assert not sites["mpi_barrier"].lexical_parallel

    def test_interprocedural_disabled(self):
        src = """
program ip;
func talk() { mpi_barrier(MPI_COMM_WORLD); return 0; }
func main() { mpi_init(); omp parallel { talk(); } mpi_finalize(); }
"""
        sites = {s.op: s for s in collect_sites(parse(src), interprocedural=False)}
        assert not sites["mpi_barrier"].in_parallel


class TestInstrumentation:
    def test_hybrid_only_policy(self):
        result = instrument_program(parse(HYBRID), policy="hybrid-only")
        names = {
            n.name for n in result.program.walk() if isinstance(n, A.CallExpr)
        }
        assert "hmpi_recv" in names and "hmpi_send" in names and "hmpi_probe" in names
        assert "mpi_barrier" in names  # filtered (outside parallel region)
        assert "mpi_finalize" in names

    def test_original_program_untouched(self):
        prog = parse(HYBRID)
        instrument_program(prog)
        names = {n.name for n in prog.walk() if isinstance(n, A.CallExpr)}
        assert not any(n.startswith("hmpi_") for n in names)

    def test_all_policy_instruments_everything_instrumentable(self):
        result = instrument_program(parse(HYBRID), policy="all")
        names = {
            n.name for n in result.program.walk() if isinstance(n, A.CallExpr)
        }
        assert "hmpi_barrier" in names and "hmpi_finalize" in names
        # queries are never instrumented
        assert "mpi_comm_rank" in names

    def test_none_policy(self):
        result = instrument_program(parse(HYBRID), policy="none")
        assert result.n_instrumented == 0
        assert result.n_filtered > 0

    def test_reduction_ratio(self):
        result = instrument_program(parse(HYBRID), policy="hybrid-only")
        assert 0.0 < result.reduction_ratio < 1.0

    def test_monitor_setup_inserted(self):
        result = instrument_program(parse(HYBRID))
        main = result.program.function("main")
        first = main.body.stmts[0]
        assert isinstance(first, A.ExprStmt)
        assert first.expr.name == "mpi_monitor_setup"

    def test_instrumented_program_parses_back(self):
        result = instrument_program(parse(HYBRID))
        reparsed = parse(print_program(result.program))
        assert reparsed.name == "h"


class TestThreadLevelChecks:
    def test_infer_multiple(self):
        info = infer_thread_level(parse(HYBRID))
        assert info.declared_level == MPI_THREAD_MULTIPLE
        assert info.uses_init_thread

    def test_infer_plain_init(self):
        src = "program p;\nfunc main() { mpi_init(); mpi_finalize(); }"
        info = infer_thread_level(parse(src))
        assert info.declared_level == MPI_THREAD_SINGLE
        assert not info.uses_init_thread

    def test_infer_dynamic_level(self):
        src = """
program p;
func main() { var lvl = 3; var p = mpi_init_thread(lvl); mpi_finalize(); }
"""
        assert infer_thread_level(parse(src)).declared_level is None

    def test_single_with_hybrid_sites_warns(self):
        src = """
program p;
func main() {
    mpi_init();
    omp parallel { mpi_barrier(MPI_COMM_WORLD); }
    mpi_finalize();
}
"""
        prog = parse(src)
        warnings = check_thread_level(prog, collect_sites(prog))
        assert any(w.kind == "initialization" for w in warnings)

    def test_funneled_unguarded_warns(self):
        src = """
program p;
func main() {
    var p = mpi_init_thread(MPI_THREAD_FUNNELED);
    omp parallel { mpi_barrier(MPI_COMM_WORLD); }
    mpi_finalize();
}
"""
        prog = parse(src)
        warnings = check_thread_level(prog, collect_sites(prog))
        assert any(w.kind == "funneled-non-master" for w in warnings)

    def test_funneled_master_guarded_clean(self):
        src = """
program p;
func main() {
    var p = mpi_init_thread(MPI_THREAD_FUNNELED);
    omp parallel { omp master { mpi_barrier(MPI_COMM_WORLD); } }
    mpi_finalize();
}
"""
        prog = parse(src)
        assert check_thread_level(prog, collect_sites(prog)) == []

    def test_multiple_is_statically_clean(self):
        prog = parse(HYBRID)
        assert check_thread_level(prog, collect_sites(prog)) == []

    def test_no_hybrid_sites_no_warnings(self):
        src = "program p;\nfunc main() { mpi_init(); mpi_finalize(); }"
        prog = parse(src)
        assert check_thread_level(prog, collect_sites(prog)) == []


class TestChecklist:
    def test_checklist_kinds_per_op(self):
        prog = parse(HYBRID)
        hybrid = [s for s in collect_sites(prog) if s.in_parallel]
        checklist = build_checklist(hybrid)
        by_op = {e.site.op: e for e in checklist.entries}
        assert MonitoredKind.TAG in by_op["mpi_recv"].kinds
        assert MonitoredKind.SRC in by_op["mpi_probe"].kinds

    def test_candidate_violations_linked(self):
        prog = parse(HYBRID)
        hybrid = [s for s in collect_sites(prog) if s.in_parallel]
        checklist = build_checklist(hybrid)
        assert "ConcurrentRecvViolation" in checklist.candidate_violations()
        assert "ProbeViolation" in checklist.candidate_violations()


class TestStaticReport:
    def test_full_report(self):
        report = run_static_analysis(parse(HYBRID))
        assert report.program_name == "h"
        assert len(report.hybrid_sites) == 3
        assert report.instrumentation.n_instrumented == 3
        assert "main" in report.cfgs
        summary = report.summary()
        assert "MPI call sites" in summary and "instrumented" in summary


class TestFoldStaticValue:
    """Edge cases of the shared constant-folding helper."""

    @staticmethod
    def fold(text):
        from repro.analysis.static_.mpi_sites import fold_static_value

        prog = parse(f"program t;\nfunc main() {{ var x = {text}; }}")
        (decl,) = [
            n
            for n in prog.function("main").walk()
            if isinstance(n, A.VarDecl)
        ]
        return fold_static_value(decl.init)

    def test_nested_unary_minus(self):
        assert self.fold("-(-(3))") == 3
        assert self.fold("-(-(-(2)))") == -2

    def test_mixed_type_arithmetic_promotes(self):
        assert self.fold("1 + 2.5") == 3.5
        assert self.fold("2 * MPI_ANY_TAG") == -2  # int language constant

    def test_truncating_division_toward_zero(self):
        assert self.fold("7 / -2") == -3
        assert self.fold("-7 % 2") == -1  # sign follows the dividend

    def test_division_and_modulo_by_zero_never_fold(self):
        assert self.fold("1 / 0") is None
        assert self.fold("1 % 0") is None

    def test_float_modulo_never_folds(self):
        assert self.fold("5.0 % 2") is None

    def test_booleans_do_not_participate_in_arithmetic(self):
        assert self.fold("true") is True
        assert self.fold("true + 1") is None
        assert self.fold("-(true)") is None

    def test_non_constant_name_stays_symbolic(self):
        # a plain variable — even one later assigned a constant — is the
        # dataflow layer's job, not the lexical folder's
        assert self.fold("y + 1") is None
        assert self.fold("y") is None


class TestStaticAnalysisCache:
    """The memo cache is keyed on ``program.nid`` — a process-global,
    never-reused counter — so building and dropping programs in a loop
    can never alias cache entries the way an ``id()`` key could once
    CPython recycles addresses."""

    SRC = "program cachetest;\nfunc main() { compute(1); }\n"

    def test_same_program_object_hits_cache(self):
        from repro.analysis.static_.report import clear_static_analysis_cache

        clear_static_analysis_cache()
        prog = parse(self.SRC)
        first = run_static_analysis(prog)
        assert run_static_analysis(prog) is first

    def test_build_and_drop_loop_never_aliases(self):
        from repro.analysis.static_.report import clear_static_analysis_cache

        clear_static_analysis_cache()
        seen_nids = set()
        for i in range(6):
            prog = parse(f"program p{i};\nfunc main() {{ compute(1); }}\n")
            report = run_static_analysis(prog)
            # the report always belongs to *this* program, even though
            # earlier loop iterations' ASTs have been garbage-collected
            assert report.program_name == f"p{i}"
            assert prog.nid not in seen_nids
            seen_nids.add(prog.nid)
            del prog, report

    def test_distinct_parses_get_distinct_reports(self):
        a, b = parse(self.SRC), parse(self.SRC)
        assert a.nid != b.nid
        assert run_static_analysis(a) is not run_static_analysis(b)

    def test_option_variants_are_separate_entries(self):
        prog = parse(self.SRC)
        with_summaries = run_static_analysis(prog)
        without = run_static_analysis(prog, summaries=False)
        assert with_summaries is not without
        assert run_static_analysis(prog) is with_summaries
        assert run_static_analysis(prog, summaries=False) is without

    def test_cache_false_bypasses(self):
        prog = parse(self.SRC)
        cached = run_static_analysis(prog)
        assert run_static_analysis(prog, cache=False) is not cached
