"""DAMPI-style message-race detection tests."""

import pytest

from helpers import MPI_PAIR_HEADER, run_src, wrap_main

from repro.analysis.dynamic_.msgrace import (
    CrossProcessHB,
    find_message_races,
    wildcard_races,
)


def run_world(body, nprocs=3, **kw):
    return run_src(wrap_main(MPI_PAIR_HEADER + body), nprocs=nprocs, **kw)


class TestWildcardRaces:
    def test_two_senders_one_wildcard_recv(self):
        """The canonical message race: two candidate senders, a wildcard
        receive — either could match."""
        body = """
    var buf[1];
    if (rank == 1) { mpi_send(buf, 1, 0, 5, MPI_COMM_WORLD); }
    if (rank == 2) { mpi_send(buf, 1, 0, 5, MPI_COMM_WORLD); }
    if (rank == 0) {
        mpi_recv(buf, 1, MPI_ANY_SOURCE, 5, MPI_COMM_WORLD);
        mpi_recv(buf, 1, MPI_ANY_SOURCE, 5, MPI_COMM_WORLD);
    }
    mpi_finalize();
"""
        result = run_world(body)
        races = wildcard_races(result.log)
        assert races, "two-sender wildcard receive must race"
        assert all(r.is_wildcard for r in races)

    def test_single_sender_wildcard_not_racy(self):
        """One candidate sender: the wildcard is determined."""
        body = """
    var buf[1];
    if (rank == 1) { mpi_send(buf, 1, 0, 5, MPI_COMM_WORLD); }
    if (rank == 0) { mpi_recv(buf, 1, MPI_ANY_SOURCE, 5, MPI_COMM_WORLD); }
    mpi_finalize();
"""
        result = run_world(body, nprocs=2)
        assert wildcard_races(result.log) == []

    def test_specific_sources_not_racy(self):
        body = """
    var buf[1];
    if (rank == 1) { mpi_send(buf, 1, 0, 5, MPI_COMM_WORLD); }
    if (rank == 2) { mpi_send(buf, 1, 0, 5, MPI_COMM_WORLD); }
    if (rank == 0) {
        mpi_recv(buf, 1, 1, 5, MPI_COMM_WORLD);
        mpi_recv(buf, 1, 2, 5, MPI_COMM_WORLD);
    }
    mpi_finalize();
"""
        result = run_world(body)
        assert find_message_races(result.log) == []

    def test_causally_ordered_sends_not_alternatives(self):
        """A send that happens only *because* the receive completed (it
        is causally after it) cannot have raced it."""
        body = """
    var buf[1];
    if (rank == 1) {
        mpi_send(buf, 1, 0, 5, MPI_COMM_WORLD);
    }
    if (rank == 0) {
        mpi_recv(buf, 1, MPI_ANY_SOURCE, 5, MPI_COMM_WORLD);
        mpi_send(buf, 1, 2, 6, MPI_COMM_WORLD);
    }
    if (rank == 2) {
        mpi_recv(buf, 1, 0, 6, MPI_COMM_WORLD);
        mpi_send(buf, 1, 0, 5, MPI_COMM_WORLD);
    }
    if (rank == 0) {
        mpi_recv(buf, 1, MPI_ANY_SOURCE, 5, MPI_COMM_WORLD);
    }
    mpi_finalize();
"""
        result = run_world(body)
        first_recv_races = [
            r for r in wildcard_races(result.log)
            if r.matched_send is not None and r.matched_send.proc == 1
        ]
        # rank 2's send is causally after the first receive (it waits for
        # a message that only exists once the receive happened), so the
        # first receive has no true alternative.
        assert first_recv_races == []

    def test_barrier_separation_removes_race(self):
        """Collective synchronization orders the second sender after the
        first receive: no race."""
        body = """
    var buf[1];
    if (rank == 1) { mpi_send(buf, 1, 0, 5, MPI_COMM_WORLD); }
    if (rank == 0) { mpi_recv(buf, 1, MPI_ANY_SOURCE, 5, MPI_COMM_WORLD); }
    mpi_barrier(MPI_COMM_WORLD);
    if (rank == 2) { mpi_send(buf, 1, 0, 5, MPI_COMM_WORLD); }
    if (rank == 0) { mpi_recv(buf, 1, MPI_ANY_SOURCE, 5, MPI_COMM_WORLD); }
    mpi_finalize();
"""
        result = run_world(body)
        assert wildcard_races(result.log) == []


class TestRaceReporting:
    def test_race_names_alternative_ranks(self):
        body = """
    var buf[1];
    if (rank == 1) { mpi_send(buf, 1, 0, 5, MPI_COMM_WORLD); }
    if (rank == 2) { mpi_send(buf, 1, 0, 5, MPI_COMM_WORLD); }
    if (rank == 0) {
        mpi_recv(buf, 1, MPI_ANY_SOURCE, 5, MPI_COMM_WORLD);
        mpi_recv(buf, 1, MPI_ANY_SOURCE, 5, MPI_COMM_WORLD);
    }
    mpi_finalize();
"""
        result = run_world(body)
        race = wildcard_races(result.log)[0]
        text = str(race)
        assert "MessageRace" in text and "could also have matched" in text

    def test_any_tag_race(self):
        body = """
    var buf[1];
    if (rank == 1) {
        mpi_send(buf, 1, 0, 5, MPI_COMM_WORLD);
        mpi_send(buf, 1, 0, 6, MPI_COMM_WORLD);
    }
    if (rank == 0) {
        mpi_recv(buf, 1, 1, MPI_ANY_TAG, MPI_COMM_WORLD);
        mpi_recv(buf, 1, 1, MPI_ANY_TAG, MPI_COMM_WORLD);
    }
    mpi_finalize();
"""
        result = run_world(body, nprocs=2)
        assert wildcard_races(result.log)


class TestCrossProcessHB:
    def test_send_recv_edge_orders_events(self):
        body = """
    var buf[1];
    if (rank == 0) {
        compute(5);
        mpi_send(buf, 1, 1, 5, MPI_COMM_WORLD);
    }
    if (rank == 1) {
        mpi_recv(buf, 1, 0, 5, MPI_COMM_WORLD);
        compute(5);
    }
    mpi_finalize();
"""
        result = run_world(body, nprocs=2)
        hb = CrossProcessHB(result.log)
        # The causal edge sources at the send *begin* (the message's
        # content is fixed when it is posted).
        send_begin = next(
            e for e in result.log
            if getattr(e, "op", "") == "mpi_send" and e.phase == "begin"
        )
        recv_end = next(
            e for e in result.log
            if getattr(e, "op", "") == "mpi_recv" and e.phase == "end"
        )
        assert hb.happens_before(send_begin.seq, recv_end.seq)
        # ...and therefore everything before the send orders before
        # everything after the receive.
        recv_begin = next(
            e for e in result.log
            if getattr(e, "op", "") == "mpi_recv" and e.phase == "begin"
        )
        assert not hb.happens_before(recv_begin.seq, send_begin.seq)

    def test_independent_processes_concurrent(self):
        result = run_world("    compute(3);\n    mpi_finalize();", nprocs=2)
        hb = CrossProcessHB(result.log)
        ends = [e for e in result.log
                if getattr(e, "op", "") == "mpi_finalize" and e.phase == "end"]
        assert len(ends) == 2
        assert not hb.ordered(ends[0].seq, ends[1].seq)

    def test_master_worker_pattern_is_racy_by_design(self):
        """ANY_SOURCE result collection in master/worker is the textbook
        (usually benign) message race."""
        from repro.workloads.patterns import master_worker

        from repro.runtime import RunConfig, run_program

        result = run_program(master_worker(tasks=4),
                             RunConfig(nprocs=3, num_threads=2))
        assert wildcard_races(result.log)
