"""Control-flow graph construction tests."""

import networkx as nx
import pytest

from repro.analysis.cfg import (
    OMP_CRITICAL_BEGIN,
    OMP_PARALLEL_BEGIN,
    OMP_PARALLEL_END,
    build_cfg,
    build_program_cfgs,
)
from repro.minilang import parse


def cfg_of(body: str, name="main"):
    prog = parse(f"program p;\nfunc main() {{\n{body}\n}}")
    return build_cfg(prog.function(name))


class TestStructure:
    def test_entry_exit_exist(self):
        cfg = cfg_of("var x = 1;")
        nodes = cfg.linearize()
        assert nodes[0].kind == "entry"
        assert nodes[-1].kind == "exit"

    def test_straightline_chain(self):
        cfg = cfg_of("var x = 1;\nx = 2;\ncompute(1);")
        stmts = [n for n in cfg.linearize() if n.kind == "stmt"]
        assert len(stmts) == 3
        # each statement has exactly one successor in a straight line
        for node in stmts[:-1]:
            assert len(cfg.successors(node)) == 1

    def test_if_has_two_paths(self):
        cfg = cfg_of("if (x) { y = 1; } else { y = 2; }")
        branch = [n for n in cfg.linearize() if n.kind == "branch"][0]
        assert len(cfg.successors(branch)) == 2

    def test_if_without_else_falls_through(self):
        cfg = cfg_of("if (x) { y = 1; }\nz = 2;")
        branch = [n for n in cfg.linearize() if n.kind == "branch"][0]
        succ_kinds = sorted(n.kind for n in cfg.successors(branch))
        assert len(cfg.successors(branch)) == 2  # then-body and fall-through

    def test_while_back_edge(self):
        cfg = cfg_of("while (x) { x = x - 1; }")
        head = [n for n in cfg.linearize() if n.kind == "loop-head"][0]
        body_stmt = [n for n in cfg.linearize() if n.kind == "stmt"][0]
        assert cfg.graph.has_edge(body_stmt.cfg_id, head.cfg_id)

    def test_for_init_and_step_nodes(self):
        cfg = cfg_of("for (var i = 0; i < 3; i = i + 1) { compute(1); }")
        labels = [n.label for n in cfg.linearize()]
        assert "ForInit" in labels and "ForStep" in labels

    def test_return_edges_to_exit(self):
        cfg = cfg_of("if (x) { return; }\ncompute(1);")
        ret = [n for n in cfg.linearize() if n.label == "Return"][0]
        assert cfg.exit.cfg_id in [n.cfg_id for n in cfg.successors(ret)]

    def test_all_nodes_reachable(self):
        cfg = cfg_of(
            "if (a) { b = 1; } else { b = 2; }\n"
            "while (b) { b = b - 1; }\n"
            "omp parallel { compute(1); }"
        )
        reachable = cfg.reachable_from_entry()
        assert set(cfg.nodes) == reachable

    def test_acyclic_without_loops(self):
        cfg = cfg_of("var x = 1;\nif (x) { x = 2; }")
        assert nx.is_directed_acyclic_graph(cfg.graph)


class TestOmpMarkers:
    def test_parallel_begin_end_bracket(self):
        cfg = cfg_of("omp parallel { mpi_barrier(MPI_COMM_WORLD); }")
        order = [n.kind for n in cfg.linearize()]
        begin = order.index(OMP_PARALLEL_BEGIN)
        end = order.index(OMP_PARALLEL_END)
        assert begin < end
        # the MPI call node sits between the markers (Algorithm 1's scan)
        stmt_idx = next(
            i for i, n in enumerate(cfg.linearize()) if n.is_mpi_call
        )
        assert begin < stmt_idx < end

    def test_mpi_nodes_found(self):
        cfg = cfg_of("mpi_init();\nomp parallel { mpi_barrier(MPI_COMM_WORLD); }")
        assert len(cfg.mpi_nodes()) == 2

    def test_hmpi_calls_count_as_mpi(self):
        cfg = cfg_of("hmpi_recv(a, 1, 0, 0, MPI_COMM_WORLD);")
        assert len(cfg.mpi_nodes()) == 1

    def test_critical_markers(self):
        cfg = cfg_of("omp critical (c) { x = 1; }")
        kinds = [n.kind for n in cfg.linearize()]
        assert OMP_CRITICAL_BEGIN in kinds

    def test_sections_branch_fanout(self):
        cfg = cfg_of(
            "omp parallel { omp sections {"
            " omp section { compute(1); } omp section { compute(2); } } }"
        )
        ws_begin = [n for n in cfg.linearize() if n.label == "omp sections"][0]
        assert len(cfg.successors(ws_begin)) == 2

    def test_program_cfgs_for_all_functions(self):
        prog = parse("program p;\nfunc helper() { }\nfunc main() { helper(); }")
        cfgs = build_program_cfgs(prog)
        assert set(cfgs) == {"helper", "main"}

    def test_call_name_accessor(self):
        cfg = cfg_of("mpi_finalize();")
        node = cfg.mpi_nodes()[0]
        assert node.call_name == "mpi_finalize"


class TestLinearizeNesting:
    """linearize() is construction order (the paper's srcCFG order):
    a construct's header precedes every node of its body, and begin/end
    markers bracket the body even under deep nesting."""

    def test_nested_loops_header_order(self):
        cfg = cfg_of(
            "while (a) {\n"
            "  while (b) {\n"
            "    for (var i = 0; i < 3; i = i + 1) { compute(1); }\n"
            "  }\n"
            "}"
        )
        nodes = cfg.linearize()
        heads = [i for i, n in enumerate(nodes) if n.kind == "loop-head"]
        assert len(heads) == 3
        assert heads == sorted(heads)
        body_stmt = next(i for i, n in enumerate(nodes) if n.label == "ExprStmt")
        assert all(h < body_stmt for h in heads)

    def test_nested_branches_then_before_else(self):
        cfg = cfg_of(
            "if (a) {\n"
            "  if (b) { x = 1; } else { x = 2; }\n"
            "} else {\n"
            "  if (c) { x = 3; } else { x = 4; }\n"
            "}"
        )
        nodes = cfg.linearize()
        branches = [i for i, n in enumerate(nodes) if n.kind == "branch"]
        assert len(branches) == 3
        stmts = [n for n in nodes if n.kind == "stmt"]
        # construction order visits then-branches before else-branches
        values = [n.ast.value.value for n in stmts]
        assert values == [1, 2, 3, 4]
        # every inner branch head comes after the outer one
        assert branches[0] < branches[1] < branches[2]

    def test_loop_inside_branch_inside_parallel(self):
        cfg = cfg_of(
            "omp parallel {\n"
            "  if (a) {\n"
            "    while (b) { compute(1); }\n"
            "  }\n"
            "}"
        )
        nodes = cfg.linearize()
        kinds = [n.kind for n in nodes]
        begin = kinds.index(OMP_PARALLEL_BEGIN)
        end = kinds.index(OMP_PARALLEL_END)
        branch = kinds.index("branch")
        head = kinds.index("loop-head")
        assert begin < branch < head < end

    def test_linearize_is_stable_and_complete(self):
        cfg = cfg_of(
            "for (var i = 0; i < 2; i = i + 1) {\n"
            "  if (i) { compute(1); } else { compute(2); }\n"
            "}"
        )
        first = [n.cfg_id for n in cfg.linearize()]
        second = [n.cfg_id for n in cfg.linearize()]
        assert first == second
        assert set(first) == set(cfg.nodes)
        assert len(first) == len(set(first))


class TestWorksharingLinearization:
    """Regression pins for worksharing + nested-parallel CFG shape: the
    divergence pass and the implicit-ws-barrier MHP both rely on the
    begin/end bracket structure and the single-skip edge staying put."""

    def test_omp_for_bracket_order(self):
        cfg = cfg_of(
            "omp parallel num_threads(2) {\n"
            "  omp for for (var i = 0; i < 4; i = i + 1) { compute(1); }\n"
            "  omp barrier;\n"
            "}"
        )
        labels = [n.label for n in cfg.linearize() if n.label]
        assert labels.index("omp parallel") < labels.index("omp for")
        assert labels.index("omp for") < labels.index("end omp for")
        assert labels.index("end omp for") < labels.index("omp barrier")
        assert labels.index("omp barrier") < labels.index("end omp parallel")

    def test_single_has_skip_edge(self):
        # threads that lose the single claim jump begin -> end directly
        cfg = cfg_of(
            "omp parallel num_threads(2) {\n"
            "  omp single { compute(1); }\n"
            "}"
        )
        nodes = cfg.linearize()
        begin = [n for n in nodes if n.label == "omp single"][0]
        end = [n for n in nodes if n.label == "end omp single"][0]
        assert cfg.graph.has_edge(begin.cfg_id, end.cfg_id)
        assert len(cfg.successors(begin)) == 2  # body and skip

    def test_sections_fan_in_to_one_end(self):
        cfg = cfg_of(
            "omp parallel num_threads(2) {\n"
            "  omp sections {\n"
            "    omp section { compute(1); }\n"
            "    omp section { compute(2); }\n"
            "  }\n"
            "}"
        )
        nodes = cfg.linearize()
        end = [n for n in nodes if n.label == "end omp sections"][0]
        preds = [
            n for n in nodes
            if cfg.graph.has_edge(n.cfg_id, end.cfg_id)
        ]
        assert len(preds) == 2  # one per section body

    def test_nested_parallel_brackets_nest(self):
        cfg = cfg_of(
            "omp parallel num_threads(2) {\n"
            "  omp parallel num_threads(2) {\n"
            "    omp for for (var i = 0; i < 2; i = i + 1) { compute(1); }\n"
            "  }\n"
            "}"
        )
        labels = [n.label for n in cfg.linearize() if n.label]
        outer_begin = labels.index("omp parallel")
        inner_begin = labels.index("omp parallel", outer_begin + 1)
        inner_end = labels.index("end omp parallel")
        outer_end = labels.index("end omp parallel", inner_end + 1)
        assert outer_begin < inner_begin < labels.index("omp for")
        assert labels.index("end omp for") < inner_end < outer_end

    def test_worksharing_loop_back_edge_stays_inside_bracket(self):
        cfg = cfg_of(
            "omp parallel num_threads(2) {\n"
            "  omp for for (var i = 0; i < 4; i = i + 1) { compute(1); }\n"
            "}"
        )
        nodes = cfg.linearize()
        head = [n for n in nodes if n.kind == "loop-head"][0]
        body = [n for n in nodes if n.label == "Call" or n.kind == "stmt"]
        # some body node loops back to the head; the ws-end is fed by
        # the loop head (loop exit), not by the body directly
        assert any(cfg.graph.has_edge(n.cfg_id, head.cfg_id) for n in body)
        end = [n for n in nodes if n.label == "end omp for"][0]
        assert cfg.graph.has_edge(head.cfg_id, end.cfg_id)
