"""Eraser lockset state-machine tests."""

import pytest

from repro.analysis.dynamic_.lockset import EraserState, LocksetAnalysis


def fs(*names):
    return frozenset(names)


class TestStateMachine:
    def test_virgin_to_exclusive(self):
        ls = LocksetAnalysis()
        loc = ls.access("v", seq=1, thread=1, locks=fs(), is_write=True)
        assert loc.state == EraserState.EXCLUSIVE

    def test_exclusive_stays_for_same_thread(self):
        ls = LocksetAnalysis()
        ls.access("v", 1, 1, fs(), True)
        loc = ls.access("v", 2, 1, fs(), True)
        assert loc.state == EraserState.EXCLUSIVE
        assert not loc.is_race_candidate

    def test_second_thread_read_goes_shared(self):
        ls = LocksetAnalysis()
        ls.access("v", 1, 1, fs(), True)
        loc = ls.access("v", 2, 2, fs(), False)
        assert loc.state == EraserState.SHARED
        assert not loc.is_race_candidate  # reads only shared: no report

    def test_second_thread_write_goes_shared_modified(self):
        ls = LocksetAnalysis()
        ls.access("v", 1, 1, fs(), True)
        loc = ls.access("v", 2, 2, fs(), True)
        assert loc.state == EraserState.SHARED_MODIFIED
        assert loc.is_race_candidate

    def test_shared_then_write_promotes(self):
        ls = LocksetAnalysis()
        ls.access("v", 1, 1, fs(), True)
        ls.access("v", 2, 2, fs(), False)
        loc = ls.access("v", 3, 2, fs(), True)
        assert loc.state == EraserState.SHARED_MODIFIED


class TestCandidateLocksets:
    def test_common_lock_prevents_report(self):
        ls = LocksetAnalysis()
        ls.access("v", 1, 1, fs("L"), True)
        loc = ls.access("v", 2, 2, fs("L"), True)
        assert loc.candidate == fs("L")
        assert not loc.is_race_candidate

    def test_lockset_intersection_shrinks(self):
        ls = LocksetAnalysis()
        ls.access("v", 1, 1, fs("A", "B"), True)
        ls.access("v", 2, 2, fs("B", "C"), True)
        loc = ls.access("v", 3, 1, fs("B"), True)
        assert loc.candidate == fs("B")

    def test_disjoint_locks_empty_candidate(self):
        ls = LocksetAnalysis()
        ls.access("v", 1, 1, fs("A"), True)
        loc = ls.access("v", 2, 2, fs("B"), True)
        assert loc.lockset_empty
        assert loc.is_race_candidate

    def test_race_candidates_listing(self):
        ls = LocksetAnalysis()
        ls.access("safe", 1, 1, fs("L"), True)
        ls.access("safe", 2, 2, fs("L"), True)
        ls.access("racy", 3, 1, fs(), True)
        ls.access("racy", 4, 2, fs(), True)
        keys = [loc.key for loc in ls.race_candidates()]
        assert keys == ["racy"]


class TestRacyPairs:
    def test_pairs_require_different_threads(self):
        ls = LocksetAnalysis()
        ls.access("v", 1, 1, fs(), True)
        ls.access("v", 2, 1, fs(), True)
        assert ls.racy_pairs("v") == []

    def test_pairs_require_a_write(self):
        ls = LocksetAnalysis()
        ls.access("v", 1, 1, fs(), False)
        ls.access("v", 2, 2, fs(), False)
        assert ls.racy_pairs("v") == []

    def test_pairs_require_disjoint_locks(self):
        ls = LocksetAnalysis()
        ls.access("v", 1, 1, fs("L"), True)
        ls.access("v", 2, 2, fs("L"), True)
        assert ls.racy_pairs("v") == []

    def test_racy_pair_found(self):
        ls = LocksetAnalysis()
        ls.access("v", 1, 1, fs("A"), True)
        ls.access("v", 2, 2, fs("B"), True)
        pairs = ls.racy_pairs("v")
        assert len(pairs) == 1
        a, b = pairs[0]
        assert {a.thread, b.thread} == {1, 2}

    def test_unknown_key_empty(self):
        assert LocksetAnalysis().racy_pairs("ghost") == []
