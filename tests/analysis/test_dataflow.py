"""Worklist dataflow framework tests: the SymInterval domain, the
forward engine, the three client analyses, and the candidate pruning
they enable — including the soundness guarantee that pruning never
hides a dynamically confirmed violation."""

import pytest

from repro.analysis.cfg import build_cfg, build_program_cfgs
from repro.analysis.static_ import (
    collect_sites,
    find_candidates,
    run_static_analysis,
)
from repro.analysis.static_.dataflow import (
    PRUNE_ENVELOPE,
    PRUNE_LOCKSTATE,
    PRUNE_MHP,
    EnvelopeAnalysis,
    LockStateAnalysis,
    SymInterval,
    Symbol,
    TOP,
    compute_dataflow,
    compute_mhp,
    const,
    interval,
    may_happen_in_parallel,
    provably_disjoint,
    solve,
    symbol,
)
from repro.analysis.static_.dataflow.lockstate import critical_token, lock_token
from repro.analysis.static_.dataflow.values import (
    add,
    join,
    mod,
    mul,
    neg,
    sub,
    widen,
)
from repro.home import check_program
from repro.minilang import parse
from repro.mpi.constants import MPI_ANY_TAG
from repro.violations import (
    COLLECTIVE,
    CONCURRENT_RECV,
    CONCURRENT_REQUEST,
    FINALIZATION,
    INITIALIZATION,
    PROBE,
)


def facts_for(src):
    prog = parse(src)
    sites = collect_sites(prog)
    return compute_dataflow(prog, build_program_cfgs(prog), sites), sites


def site(sites, op, index=0):
    return [s for s in sites if s.op == op][index]


RANK = Symbol("rank", 1, 0.0, float("inf"))
OTHER = Symbol("rank", 2, 0.0, float("inf"))


class TestSymIntervalDomain:
    def test_constant_arithmetic(self):
        assert add(const(2), const(3)).constant == 5
        assert sub(const(2), const(3)).constant == -1
        assert mul(const(4), const(3)).constant == 12
        assert mod(const(7), const(3)).constant == 1
        assert neg(const(5)).constant == -5

    def test_symbol_plus_offset(self):
        value = add(symbol(RANK), const(4))
        assert value.base == RANK and value.lo == value.hi == 4

    def test_same_base_subtraction_cancels(self):
        a = add(symbol(RANK), const(9))
        b = add(symbol(RANK), const(4))
        diff = sub(a, b)
        assert diff.base is None and diff.constant == 5

    def test_two_symbols_add_to_top(self):
        assert add(symbol(RANK), symbol(OTHER)).is_top

    def test_disjoint_same_base_offsets(self):
        a = add(symbol(RANK), const(4))
        b = add(symbol(RANK), const(9))
        assert provably_disjoint(a, b)
        assert not provably_disjoint(a, a)

    def test_distinct_bases_compare_concrete_ranges(self):
        # rank#1 + 4 and rank#2 + 9 both concretize to unbounded ranges
        a = add(symbol(RANK), const(4))
        b = add(symbol(OTHER), const(9))
        assert not provably_disjoint(a, b)

    def test_wildcard_blocks_disjointness(self):
        assert provably_disjoint(const(1), const(2))
        assert not provably_disjoint(const(MPI_ANY_TAG), const(2), wildcard=MPI_ANY_TAG)
        assert not provably_disjoint(interval(-2, 0), const(5), wildcard=-1)

    def test_none_means_no_information(self):
        assert not provably_disjoint(None, const(2))
        assert not provably_disjoint(const(1), None)

    def test_join_same_base_keeps_symbol(self):
        a = add(symbol(RANK), const(4))
        b = add(symbol(RANK), const(9))
        merged = join(a, b)
        assert merged.base == RANK and (merged.lo, merged.hi) == (4, 9)

    def test_join_base_mismatch_widens_to_concrete(self):
        merged = join(add(symbol(RANK), const(4)), const(3))
        assert merged.base is None

    def test_widen_unstable_bound_to_infinity(self):
        widened = widen(interval(0, 1), interval(0, 2))
        assert widened.lo == 0 and widened.hi == float("inf")
        assert widen(const(5), const(5)) == const(5)

    def test_mod_bounds_nonnegative_dividend(self):
        value = mod(interval(0, float("inf")), const(8))
        assert (value.lo, value.hi) == (0, 7)

    def test_top_absorbs(self):
        assert add(TOP, const(1)).is_top
        assert mul(TOP, const(0)).constant == 0  # annihilator still exact


class TestEngine:
    def test_straightline_constant(self):
        prog = parse(
            "program p;\nfunc main() {\n"
            "  var x = 1;\n  x = x + 2;\n  compute(x);\n}"
        )
        cfg = build_cfg(prog.function("main"))
        result = solve(cfg, EnvelopeAnalysis(cfg))
        exit_env = result.fact_before(cfg.exit)
        assert exit_env["x"].constant == 3

    def test_branch_join_becomes_range(self):
        prog = parse(
            "program p;\nfunc main() {\n"
            "  var x = 0;\n  if (c) { x = 1; } else { x = 5; }\n  compute(x);\n}"
        )
        cfg = build_cfg(prog.function("main"))
        result = solve(cfg, EnvelopeAnalysis(cfg))
        exit_env = result.fact_before(cfg.exit)
        assert (exit_env["x"].lo, exit_env["x"].hi) == (1, 5)

    def test_loop_terminates_via_widening(self):
        prog = parse(
            "program p;\nfunc main() {\n"
            "  var x = 0;\n  while (c) { x = x + 1; }\n  compute(x);\n}"
        )
        cfg = build_cfg(prog.function("main"))
        result = solve(cfg, EnvelopeAnalysis(cfg))
        exit_env = result.fact_before(cfg.exit)
        # widened: lower bound stays, upper bound blown to +inf
        assert exit_env["x"].lo == 0 and exit_env["x"].hi == float("inf")

    def test_unreachable_code_gets_no_fact(self):
        prog = parse(
            "program p;\nfunc main() {\n  return;\n  compute(1);\n}"
        )
        cfg = build_cfg(prog.function("main"))
        result = solve(cfg, EnvelopeAnalysis(cfg))
        dead = [n for n in cfg.linearize() if n.kind == "stmt"][-1]
        assert result.fact_before(dead) is None


ENVELOPE_HEAD = """
program df;
var buf[4];
func main() {
    var p = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var size = mpi_comm_size(MPI_COMM_WORLD);
"""


class TestEnvelopePropagation:
    def test_rank_relative_tags_disjoint(self):
        facts, sites = facts_for(ENVELOPE_HEAD + """
    var tag1 = rank + 4;
    var tag2 = rank + 9;
    omp parallel num_threads(2) {
        mpi_recv(buf, 1, 0, tag1, MPI_COMM_WORLD);
        mpi_recv(buf, 1, 0, tag2, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
""")
        a, b = site(sites, "mpi_recv", 0), site(sites, "mpi_recv", 1)
        assert facts.envelopes_disjoint(a, b)
        assert not facts.envelopes_disjoint(a, a)

    def test_thread_num_tag_never_disjoint(self):
        # omp_get_thread_num() differs between the compared threads, so
        # tag = tid + 4 vs tid + 9 may alias (thread 5's tag1 == thread
        # 0's tag2): no symbolic base, no prune.
        facts, sites = facts_for(ENVELOPE_HEAD + """
    omp parallel num_threads(8) private(tag1, tag2) {
        var tag1 = omp_get_thread_num() + 4;
        var tag2 = omp_get_thread_num() + 9;
        mpi_recv(buf, 1, 0, tag1, MPI_COMM_WORLD);
        mpi_recv(buf, 1, 0, tag2, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
""")
        a, b = site(sites, "mpi_recv", 0), site(sites, "mpi_recv", 1)
        assert not facts.envelopes_disjoint(a, b)

    def test_shared_variable_assigned_in_region_is_poisoned(self):
        # Another thread may run the second assignment before this
        # thread's first recv, so "tag" has no provable value inside.
        facts, sites = facts_for(ENVELOPE_HEAD + """
    var tag = 0;
    omp parallel num_threads(2) {
        tag = rank + 4;
        mpi_recv(buf, 1, 0, tag, MPI_COMM_WORLD);
        tag = rank + 9;
        mpi_recv(buf, 1, 0, tag, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
""")
        a, b = site(sites, "mpi_recv", 0), site(sites, "mpi_recv", 1)
        assert facts.envelope(a).tag is None
        assert not facts.envelopes_disjoint(a, b)

    def test_region_local_declaration_not_poisoned(self):
        facts, sites = facts_for(ENVELOPE_HEAD + """
    omp parallel num_threads(2) {
        var tag1 = rank + 4;
        var tag2 = rank + 9;
        mpi_recv(buf, 1, 0, tag1, MPI_COMM_WORLD);
        mpi_recv(buf, 1, 0, tag2, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
""")
        a, b = site(sites, "mpi_recv", 0), site(sites, "mpi_recv", 1)
        assert facts.envelopes_disjoint(a, b)

    def test_wildcard_source_blocks_prune(self):
        facts, sites = facts_for(ENVELOPE_HEAD + """
    var tag1 = rank + 4;
    var tag2 = rank + 9;
    omp parallel num_threads(2) {
        mpi_recv(buf, 1, MPI_ANY_SOURCE, tag1, MPI_COMM_WORLD);
        mpi_recv(buf, 1, MPI_ANY_SOURCE, MPI_ANY_TAG, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
""")
        a, b = site(sites, "mpi_recv", 0), site(sites, "mpi_recv", 1)
        assert not facts.envelopes_disjoint(a, b)

    def test_global_killed_by_user_call(self):
        # helper() reassigns the global tag between the definition and
        # the use, so the recv's tag must be unknown.
        facts, sites = facts_for("""
program df;
var buf[4];
var tag = 0;
func helper() {
    tag = 99;
}
func main() {
    var p = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    tag = 5;
    helper();
    omp parallel num_threads(2) {
        mpi_recv(buf, 1, 0, tag, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
""")
        recv = site(sites, "mpi_recv")
        assert facts.envelope(recv).tag is None

    def test_constant_global_propagates(self):
        facts, sites = facts_for("""
program df;
var buf[4];
var the_tag = 42;
func main() {
    var p = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        mpi_recv(buf, 1, 0, the_tag, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
""")
        recv = site(sites, "mpi_recv")
        assert facts.envelope(recv).tag.constant == 42


class TestLockState:
    def test_set_unset_lock_serializes_pair(self):
        facts, sites = facts_for(ENVELOPE_HEAD + """
    omp parallel num_threads(2) {
        omp_set_lock("m");
        mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD);
        omp_unset_lock("m");
        mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
""")
        a, b = site(sites, "mpi_recv", 0), site(sites, "mpi_recv", 1)
        assert facts.locks_held.get(a.nid) == frozenset({lock_token("m")})
        assert facts.serialized_by_locks(a, a)
        assert not facts.serialized_by_locks(a, b)

    def test_candidate_pair_pruned_by_lock(self):
        """Acceptance: a pair serialized by omp_set_lock/omp_unset_lock
        is excluded from the candidate set."""
        prog = parse(ENVELOPE_HEAD + """
    omp parallel num_threads(2) {
        omp_set_lock("m");
        mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD);
        omp_unset_lock("m");
    }
    mpi_finalize();
}
""")
        sites = collect_sites(prog)
        baseline = find_candidates(sites)
        facts = compute_dataflow(prog, build_program_cfgs(prog), sites)
        pruned = find_candidates(sites, facts)
        recv_pairs = [c for c in baseline if c.vclass == CONCURRENT_RECV]
        assert recv_pairs  # without facts the self-pair is a candidate
        assert not [c for c in pruned if c.vclass == CONCURRENT_RECV]
        assert facts.pruned[PRUNE_LOCKSTATE] == 1

    def test_unset_with_unknown_name_drops_all_locks(self):
        facts, sites = facts_for(ENVELOPE_HEAD + """
    var which = "m";
    omp parallel num_threads(2) {
        omp_set_lock("m");
        omp_unset_lock(which);
        mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
""")
        recv = site(sites, "mpi_recv")
        assert not facts.locks_held.get(recv.nid)

    def test_user_call_drops_locks_but_not_criticals(self):
        facts, sites = facts_for("""
program df;
var buf[4];
func helper() {
    compute(1);
}
func main() {
    var p = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        omp_set_lock("m");
        omp critical(c) {
            helper();
            mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD);
        }
        omp_unset_lock("m");
    }
    mpi_finalize();
}
""")
        recv = site(sites, "mpi_recv")
        assert facts.locks_held[recv.nid] == frozenset({critical_token("c")})

    def test_conditional_acquisition_not_must_held(self):
        facts, sites = facts_for(ENVELOPE_HEAD + """
    omp parallel num_threads(2) {
        if (rank == 0) { omp_set_lock("m"); }
        mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
""")
        recv = site(sites, "mpi_recv")
        assert not facts.locks_held.get(recv.nid)


class TestMHP:
    def test_barrier_separates_phases(self):
        """Acceptance: a pair separated by ``omp barrier`` is pruned."""
        prog = parse(ENVELOPE_HEAD + """
    omp parallel num_threads(2) {
        mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD);
        omp barrier;
        mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
""")
        sites = collect_sites(prog)
        facts = compute_dataflow(prog, build_program_cfgs(prog), sites)
        a = [s for s in sites if s.op == "mpi_recv"][0]
        b = [s for s in sites if s.op == "mpi_recv"][1]
        # cross-phase ordered; each site still races with itself
        assert not facts.may_happen_in_parallel(a, b)
        assert facts.may_happen_in_parallel(a, a)
        pruned = find_candidates(sites, facts)
        cross = [
            c for c in pruned
            if c.vclass == CONCURRENT_RECV and c.site_a.nid != c.site_b.nid
        ]
        assert not cross
        assert facts.pruned[PRUNE_MHP] == 1

    def test_conditional_barrier_is_unreliable(self):
        facts, sites = facts_for(ENVELOPE_HEAD + """
    omp parallel num_threads(2) {
        mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD);
        if (rank == 0) { omp barrier; }
        mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
""")
        a, b = site(sites, "mpi_recv", 0), site(sites, "mpi_recv", 1)
        assert facts.may_happen_in_parallel(a, b)

    def test_distinct_parallel_regions_sequential(self):
        facts, sites = facts_for(ENVELOPE_HEAD + """
    omp parallel num_threads(2) {
        mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD);
    }
    omp parallel num_threads(2) {
        mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
""")
        a, b = site(sites, "mpi_recv", 0), site(sites, "mpi_recv", 1)
        assert not facts.may_happen_in_parallel(a, b)

    def test_function_called_from_parallel_is_unsafe(self):
        facts, sites = facts_for("""
program df;
var buf[4];
func worker() {
    mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD);
}
func main() {
    var p = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        worker();
    }
    mpi_finalize();
}
""")
        assert "worker" in facts.unsafe_funcs
        recv = site(sites, "mpi_recv")
        assert facts.may_happen_in_parallel(recv, recv)

    def test_mhp_unit_rules(self):
        from repro.analysis.static_.dataflow.mhp import MHPInfo

        same = MHPInfo("f", (1,), phase=0)
        later = MHPInfo("f", (1,), phase=1)
        other = MHPInfo("f", (2,), phase=0)
        unreliable = MHPInfo("f", (1,), phase=1, phase_reliable=False)
        assert may_happen_in_parallel(same, same)
        assert not may_happen_in_parallel(same, later)
        assert not may_happen_in_parallel(same, other)
        assert may_happen_in_parallel(same, unreliable)
        assert may_happen_in_parallel(None, same)
        assert may_happen_in_parallel(same, later, unsafe_funcs={"f"})


class TestCandidateReduction:
    DISJOINT_TAGS = ENVELOPE_HEAD + """
    var tag1 = rank + 4;
    var tag2 = rank + 9;
    omp parallel num_threads(2) {
        if (omp_get_thread_num() == 0) {
            mpi_recv(buf, 1, 0, tag1, MPI_COMM_WORLD);
        } else {
            mpi_recv(buf, 1, 0, tag2, MPI_COMM_WORLD);
        }
    }
    mpi_finalize();
}
"""

    def test_dataflow_reduces_candidates(self):
        """Acceptance: tags provably disjoint only through dataflow
        (``rank + 4`` vs ``rank + 9``) reduce the candidate count."""
        prog = parse(self.DISJOINT_TAGS)
        without = run_static_analysis(prog, dataflow=False)
        with_df = run_static_analysis(prog, dataflow=True)
        assert len(with_df.candidates) < len(without.candidates)
        facts = with_df.dataflow_facts
        assert facts.pruned[PRUNE_ENVELOPE] >= 1
        assert with_df.summary()  # prune line renders

    def test_compute_mhp_covers_all_calls(self):
        prog = parse(self.DISJOINT_TAGS)
        infos = compute_mhp(prog)
        sites = collect_sites(prog)
        assert all(s.nid in infos for s in sites)


class TestSoundnessAgainstDynamicPhase:
    def test_injected_violations_still_detected(self):
        """Acceptance: dataflow pruning (on by default) must not hide
        any of the six seeded violation classes from the full HOME
        pipeline."""
        from repro.workloads.injection import inject_all
        from tests.workloads.test_injection import clean_program

        injected = inject_all(clean_program())
        report = check_program(injected.program, nprocs=2)
        assert set(report.violations.classes()) >= {
            CONCURRENT_RECV, CONCURRENT_REQUEST, PROBE, COLLECTIVE,
            FINALIZATION, INITIALIZATION,
        }

    def test_npb_dynamic_findings_covered_with_dataflow(self):
        from repro.workloads.npb import build_lu_mz

        program = build_lu_mz(inject=True)
        static = run_static_analysis(program, dataflow=True)
        report = check_program(program, nprocs=2)
        candidate_locs = set()
        for c in static.candidates:
            candidate_locs.update(c.locs())
        for violation in report.violations:
            if violation.vclass in (INITIALIZATION,):
                continue
            assert any(loc in candidate_locs for loc in violation.locs)


class TestReportSurfaces:
    def test_as_dict_includes_dataflow(self):
        prog = parse(TestCandidateReduction.DISJOINT_TAGS)
        report = run_static_analysis(prog)
        payload = report.as_dict()
        assert payload["dataflow"] is not None
        assert payload["dataflow"]["pruned"][PRUNE_ENVELOPE] >= 1
        assert payload["dataflow"]["iterations"] > 0
        import json

        json.dumps(payload)  # fully serializable

    def test_dataflow_off_leaves_facts_none(self):
        prog = parse(TestCandidateReduction.DISJOINT_TAGS)
        report = run_static_analysis(prog, dataflow=False)
        assert report.dataflow_facts is None
        assert report.as_dict()["dataflow"] is None

    def test_home_extras_expose_prune_counts(self):
        prog = parse(TestCandidateReduction.DISJOINT_TAGS)
        report = check_program(prog, nprocs=2)
        assert "static_candidates" in report.extras
        assert PRUNE_ENVELOPE in report.extras["dataflow_pruned"]
