"""Hybrid (lockset + happens-before) detector over instrumented runs."""

import pytest

from repro.analysis.dynamic_.hybrid import DetectorConfig, analyze, analyze_process
from repro.analysis.static_ import instrument_program
from repro.events.event import MonitoredKind
from repro.minilang import parse
from repro.runtime import Interpreter, RunConfig


def instrumented_run(src, nprocs=2, seed=0, **kw):
    result = instrument_program(parse(src))
    config = RunConfig(nprocs=nprocs, num_threads=2, seed=seed,
                       thread_level_mode="permissive", **kw)
    return Interpreter(result.program, config).run()


RACY_RECV = """
program r;
var buf[2];
func main() {
    var p = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var partner = 1 - rank;
    mpi_send(buf, 1, partner, 7, MPI_COMM_WORLD);
    mpi_send(buf, 1, partner, 7, MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        mpi_recv(buf, 1, partner, 7, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
"""

GUARDED_RECV = """
program g;
var buf[2];
func main() {
    var p = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var partner = 1 - rank;
    mpi_send(buf, 1, partner, 7, MPI_COMM_WORLD);
    mpi_send(buf, 1, partner, 7, MPI_COMM_WORLD);
    omp parallel num_threads(2) {
        omp critical {
            mpi_recv(buf, 1, partner, 7, MPI_COMM_WORLD);
        }
    }
    mpi_finalize();
}
"""


class TestCallRecords:
    def test_records_grouped_per_call(self):
        result = instrumented_run(RACY_RECV)
        reports = analyze(result.log)
        report = reports[0]
        recv_records = [r for r in report.records.values() if r.op == "mpi_recv"]
        assert len(recv_records) == 2
        for rec in recv_records:
            assert rec.arg(MonitoredKind.TAG) == 7
            assert rec.arg(MonitoredKind.COMM) == 0

    def test_records_know_thread_and_loc(self):
        result = instrumented_run(RACY_RECV)
        report = analyze_process(result.log, 0)
        threads = {r.thread for r in report.records.values() if r.op == "mpi_recv"}
        assert len(threads) == 2

    def test_no_records_without_instrumentation(self):
        config = RunConfig(nprocs=2, num_threads=2, thread_level_mode="permissive")
        result = Interpreter(parse(RACY_RECV), config).run()
        report = analyze_process(result.log, 0)
        assert report.records == {}
        assert report.pairs == []


class TestDetection:
    def test_racy_recvs_detected_as_concurrent(self):
        result = instrumented_run(RACY_RECV)
        report = analyze_process(result.log, 0)
        assert report.concurrent(MonitoredKind.TAG)
        assert report.concurrent(MonitoredKind.SRC)
        assert report.concurrent(MonitoredKind.COMM)
        recv_pairs = report.pairs_for_ops({"mpi_recv"}, {"mpi_recv"})
        assert len(recv_pairs) == 1

    def test_critical_guard_suppresses_detection(self):
        result = instrumented_run(GUARDED_RECV)
        report = analyze_process(result.log, 0)
        assert not report.concurrent(MonitoredKind.TAG)
        assert report.pairs == []

    def test_detection_is_schedule_independent(self):
        """The key HOME claim: the potential race is found on every seed."""
        for seed in range(5):
            result = instrumented_run(RACY_RECV, seed=seed)
            report = analyze_process(result.log, 0)
            assert report.concurrent(MonitoredKind.TAG), f"seed {seed}"

    def test_per_process_reports(self):
        result = instrumented_run(RACY_RECV)
        reports = analyze(result.log)
        assert set(reports) == {0, 1}
        assert reports[1].concurrent(MonitoredKind.TAG)


class TestDetectorConfig:
    def test_lockset_only_flags_guarded_pair(self):
        """Pure lockset treats critical-serialized recvs as racy only if
        locksets are disjoint — here they share the lock, so even the
        lockset-only detector stays quiet; but disabling the lockset and
        keeping HB with no lock edges must fire."""
        result = instrumented_run(GUARDED_RECV)
        config = DetectorConfig(use_lockset=False, use_hb=True, lock_edges=False)
        report = analyze_process(result.log, 0, config)
        assert report.concurrent(MonitoredKind.TAG)

    def test_hb_with_lock_edges_orders_guarded_pair(self):
        result = instrumented_run(GUARDED_RECV)
        config = DetectorConfig(use_lockset=False, use_hb=True, lock_edges=True)
        report = analyze_process(result.log, 0, config)
        assert not report.concurrent(MonitoredKind.TAG)

    def test_ignored_locks_reintroduce_false_positive(self):
        result = instrumented_run(GUARDED_RECV)
        config = DetectorConfig(
            ignored_locks=lambda name: name.startswith("critical:")
        )
        report = analyze_process(result.log, 0, config)
        assert report.concurrent(MonitoredKind.TAG)

    def test_pairs_for_ops_orientation(self):
        result = instrumented_run(RACY_RECV)
        report = analyze_process(result.log, 0)
        a = report.pairs_for_ops({"mpi_recv"}, {"mpi_send"})
        b = report.pairs_for_ops({"mpi_send"}, {"mpi_recv"})
        assert a == b
