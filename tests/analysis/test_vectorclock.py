"""Vector-clock algebra tests."""

import pytest

from repro.analysis.dynamic_.vectorclock import VectorClock, join_all


class TestBasics:
    def test_empty_clock_is_zero(self):
        assert VectorClock().get(3) == 0

    def test_tick_returns_new_clock(self):
        a = VectorClock()
        b = a.tick(1)
        assert a.get(1) == 0 and b.get(1) == 1

    def test_join_pointwise_max(self):
        a = VectorClock({1: 3, 2: 1})
        b = VectorClock({1: 2, 3: 5})
        j = a.join(b)
        assert (j.get(1), j.get(2), j.get(3)) == (3, 1, 5)

    def test_join_does_not_mutate(self):
        a = VectorClock({1: 1})
        b = VectorClock({1: 5})
        a.join(b)
        assert a.get(1) == 1


class TestOrdering:
    def test_leq_reflexive(self):
        a = VectorClock({1: 2})
        assert a.leq(a)

    def test_happens_before_strict(self):
        a = VectorClock({1: 1})
        b = VectorClock({1: 2})
        assert a.happens_before(b)
        assert not b.happens_before(a)
        assert not a.happens_before(a)

    def test_concurrent_when_incomparable(self):
        a = VectorClock({1: 2, 2: 0})
        b = VectorClock({1: 0, 2: 2})
        assert a.concurrent(b) and b.concurrent(a)

    def test_ordered_not_concurrent(self):
        a = VectorClock({1: 1})
        b = a.tick(2)
        assert not a.concurrent(b)

    def test_missing_components_treated_as_zero(self):
        a = VectorClock({})
        b = VectorClock({5: 1})
        assert a.leq(b)
        assert not b.leq(a)


class TestEqualityHash:
    def test_equality_ignores_explicit_zeros(self):
        assert VectorClock({1: 0, 2: 3}) == VectorClock({2: 3})

    def test_hash_consistent_with_eq(self):
        a = VectorClock({1: 0, 2: 3})
        b = VectorClock({2: 3})
        assert hash(a) == hash(b)

    def test_not_equal_other_type(self):
        assert VectorClock({}) != 42


class TestJoinAll:
    def test_join_all_empty(self):
        assert join_all([]) == VectorClock()

    def test_join_all_many(self):
        clocks = [VectorClock({i: i}) for i in range(1, 5)]
        j = join_all(clocks)
        assert all(j.get(i) == i for i in range(1, 5))

    def test_join_is_least_upper_bound(self):
        a = VectorClock({1: 2})
        b = VectorClock({2: 3})
        j = a.join(b)
        assert a.leq(j) and b.leq(j)
