"""Static violation-candidate detection tests."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis.static_ import collect_sites, find_candidates, envelope_of
from repro.analysis.static_.candidates import StaticEnvelope, candidate_summary
from repro.analysis.static_.dataflow import SymEnvelope, Symbol, SymInterval
from repro.minilang import parse
from repro.mpi.constants import MPI_ANY_TAG
from repro.violations import (
    COLLECTIVE,
    CONCURRENT_RECV,
    CONCURRENT_REQUEST,
    FINALIZATION,
    PROBE,
)


def candidates_for(src):
    return find_candidates(collect_sites(parse(src)))


def classes(cands):
    return sorted({c.vclass for c in cands})


HEAD = """
program c;
var buf[4];
func main() {
    var p = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
"""


class TestEnvelopes:
    def test_constant_envelope_extracted(self):
        src = HEAD + """
    omp parallel { mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD); }
    mpi_finalize();
}
"""
        sites = [s for s in collect_sites(parse(src)) if s.op == "mpi_recv"]
        env = envelope_of(sites[0])
        assert (env.src, env.tag, env.comm) == (0, 7, 0)

    def test_unknown_overlaps_anything(self):
        a = StaticEnvelope(None, None, None)
        b = StaticEnvelope(0, 7, 0)
        assert a.may_overlap(b) and b.may_overlap(a)

    def test_distinct_constants_disjoint(self):
        a = StaticEnvelope(0, 1, 0)
        b = StaticEnvelope(0, 2, 0)
        assert not a.may_overlap(b)

    def test_wildcard_tag_overlaps(self):
        a = StaticEnvelope(0, MPI_ANY_TAG, 0)
        b = StaticEnvelope(0, 9, 0)
        assert a.may_overlap(b)

    def test_different_comms_disjoint(self):
        a = StaticEnvelope(0, 1, 0)
        b = StaticEnvelope(0, 1, 5)
        assert not a.may_overlap(b)


class TestRecvCandidates:
    def test_same_site_pairs_with_itself(self):
        src = HEAD + """
    omp parallel { mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD); }
    mpi_finalize();
}
"""
        cands = candidates_for(src)
        assert CONCURRENT_RECV in classes(cands)

    def test_distinct_constant_tags_no_candidate(self):
        src = HEAD + """
    omp parallel {
        if (omp_get_thread_num() == 0) { mpi_recv(buf, 1, 0, 1, MPI_COMM_WORLD); }
        if (omp_get_thread_num() == 1) { mpi_recv(buf, 1, 0, 2, MPI_COMM_WORLD); }
    }
    mpi_finalize();
}
"""
        cands = [c for c in candidates_for(src) if c.vclass == CONCURRENT_RECV]
        # each site still pairs with itself (same lexical call on both
        # threads), but the cross pair with different tags is excluded
        locs = {c.locs() for c in cands}
        assert all(a == b for a, b in locs)

    def test_dynamic_tag_is_conservative(self):
        src = HEAD + """
    var tag = rank;
    omp parallel {
        mpi_recv(buf, 1, 0, tag, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
"""
        assert CONCURRENT_RECV in classes(candidates_for(src))

    def test_serial_sites_never_candidates(self):
        src = HEAD + """
    mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD);
    mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD);
    mpi_finalize();
}
"""
        assert candidates_for(src) == []

    def test_shared_critical_suppresses_candidate(self):
        src = HEAD + """
    omp parallel {
        omp critical (guard) { mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD); }
    }
    mpi_finalize();
}
"""
        assert CONCURRENT_RECV not in classes(candidates_for(src))

    def test_master_guard_suppresses_candidate(self):
        src = HEAD + """
    omp parallel {
        omp master { mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD); }
    }
    mpi_finalize();
}
"""
        assert CONCURRENT_RECV not in classes(candidates_for(src))


class TestOtherClasses:
    def test_probe_candidates(self):
        src = HEAD + """
    omp parallel {
        mpi_probe(0, 9, MPI_COMM_WORLD);
        mpi_recv(buf, 1, 0, 9, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
"""
        assert PROBE in classes(candidates_for(src))

    def test_collective_candidates_same_comm(self):
        src = HEAD + """
    omp parallel { mpi_barrier(MPI_COMM_WORLD); }
    mpi_finalize();
}
"""
        assert COLLECTIVE in classes(candidates_for(src))

    def test_request_candidates(self):
        src = HEAD + """
    var req = mpi_irecv(buf, 1, 0, 9, MPI_COMM_WORLD);
    omp parallel { mpi_wait(req); }
    mpi_finalize();
}
"""
        assert CONCURRENT_REQUEST in classes(candidates_for(src))

    def test_finalize_in_parallel_candidate(self):
        src = HEAD + """
    omp parallel {
        if (omp_get_thread_num() == 1) { mpi_finalize(); }
    }
}
"""
        assert FINALIZATION in classes(candidates_for(src))

    def test_summary_counts(self):
        src = HEAD + """
    omp parallel {
        mpi_recv(buf, 1, 0, 7, MPI_COMM_WORLD);
        mpi_barrier(MPI_COMM_WORLD);
    }
    mpi_finalize();
}
"""
        counts = candidate_summary(candidates_for(src))
        assert counts[CONCURRENT_RECV] == 1
        assert counts[COLLECTIVE] == 1


class TestAgainstDynamicPhase:
    def test_candidates_cover_dynamic_findings_on_npb(self):
        """Soundness on the benchmark suite: every dynamically confirmed
        violation site appears among the static candidates (or is an
        init/finalize structural finding)."""
        from repro.analysis.static_ import run_static_analysis
        from repro.home import check_program
        from repro.workloads.npb import build_lu_mz

        program = build_lu_mz(inject=True)
        static = run_static_analysis(program)
        report = check_program(program, nprocs=2)
        candidate_locs = set()
        for c in static.candidates:
            candidate_locs.update(c.locs())
        for violation in report.violations:
            if violation.vclass in ("InitializationViolation",):
                continue
            assert any(loc in candidate_locs for loc in violation.locs), (
                f"dynamic finding {violation} not predicted statically"
            )


class TestWildcardPairing:
    """Wildcard envelopes (MPI_ANY_SOURCE / MPI_ANY_TAG) match every
    concrete envelope, so wildcard sites must always pair."""

    def test_any_source_pairs_with_concrete_source(self):
        src = HEAD + """
    omp parallel {
        if (omp_get_thread_num() == 0) {
            mpi_recv(buf, 1, MPI_ANY_SOURCE, 7, MPI_COMM_WORLD);
        } else {
            mpi_recv(buf, 1, 1, 7, MPI_COMM_WORLD);
        }
    }
    mpi_finalize();
}
"""
        cands = [c for c in candidates_for(src) if c.vclass == CONCURRENT_RECV]
        assert any(a != b for a, b in (c.locs() for c in cands))

    def test_any_tag_pairs_despite_disjoint_constant_tags(self):
        src = HEAD + """
    omp parallel {
        if (omp_get_thread_num() == 0) {
            mpi_recv(buf, 1, 0, MPI_ANY_TAG, MPI_COMM_WORLD);
        } else {
            mpi_recv(buf, 1, 0, 9, MPI_COMM_WORLD);
        }
    }
    mpi_finalize();
}
"""
        cands = [c for c in candidates_for(src) if c.vclass == CONCURRENT_RECV]
        assert any(a != b for a, b in (c.locs() for c in cands))

    def test_wildcard_probe_pairs_with_recv(self):
        src = HEAD + """
    omp parallel {
        mpi_probe(MPI_ANY_SOURCE, MPI_ANY_TAG, MPI_COMM_WORLD);
        mpi_recv(buf, 1, 0, 3, MPI_COMM_WORLD);
    }
    mpi_finalize();
}
"""
        assert PROBE in classes(candidates_for(src))

    def test_wildcards_do_not_cross_communicators(self):
        src = HEAD + """
    omp parallel {
        if (omp_get_thread_num() == 0) {
            mpi_recv(buf, 1, MPI_ANY_SOURCE, MPI_ANY_TAG, MPI_COMM_WORLD);
        } else {
            mpi_recv(buf, 1, MPI_ANY_SOURCE, MPI_ANY_TAG, 5);
        }
    }
    mpi_finalize();
}
"""
        cands = [c for c in candidates_for(src) if c.vclass == CONCURRENT_RECV]
        assert all(a == b for a, b in (c.locs() for c in cands))


class TestOverlapProperties:
    """Property-based: envelope overlap must be symmetric — candidate
    pairing iterates unordered pairs, so an asymmetric predicate would
    make the candidate set depend on site order."""

    values = st.one_of(
        st.none(),
        st.integers(min_value=-2, max_value=3),
        st.just(MPI_ANY_TAG),
    )

    @given(values, values, values, values, values, values)
    @settings(max_examples=200, deadline=None)
    def test_static_envelope_overlap_symmetric(self, s1, t1, c1, s2, t2, c2):
        a = StaticEnvelope(s1, t1, c1)
        b = StaticEnvelope(s2, t2, c2)
        assert a.may_overlap(b) == b.may_overlap(a)

    @given(values, values, values)
    @settings(max_examples=50, deadline=None)
    def test_static_envelope_overlap_reflexive(self, s, t, c):
        env = StaticEnvelope(s, t, c)
        assert env.may_overlap(env)

    sym_values = st.one_of(
        st.none(),
        st.builds(
            SymInterval,
            base=st.one_of(
                st.none(),
                st.builds(
                    Symbol,
                    name=st.just("rank"),
                    nid=st.integers(min_value=1, max_value=3),
                    lo=st.just(0.0),
                    hi=st.just(float("inf")),
                ),
            ),
            lo=st.integers(min_value=-3, max_value=3).map(float),
            hi=st.integers(min_value=-3, max_value=3).map(float),
        ).filter(lambda v: v.lo <= v.hi),
    )

    @given(sym_values, sym_values)
    @settings(max_examples=200, deadline=None)
    def test_symbolic_envelope_overlap_symmetric(self, tag_a, tag_b):
        a = SymEnvelope(tag=tag_a)
        b = SymEnvelope(tag=tag_b)
        assert a.may_overlap(b) == b.may_overlap(a)
        assert a.may_overlap(a)
