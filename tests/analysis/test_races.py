"""Static data-race pass tests: per-region sharing classification,
conflict pairing, the four race-prune categories, the ZIV/SIV subscript
disjointness test, and interprocedural delegation."""

from repro.analysis.cfg import build_program_cfgs
from repro.analysis.static_ import (
    RACE_PRUNE_KINDS,
    StaticRaceReport,
    find_races,
    run_static_analysis,
)
from repro.analysis.static_.races import (
    FIRSTPRIVATE,
    LOOP_INDEX,
    PRIVATE,
    PRUNE_RACE_GUARD,
    PRUNE_RACE_LOCK,
    PRUNE_RACE_MHP,
    PRUNE_RACE_SUBSCRIPT,
    REDUCTION,
    SHARED,
)
from repro.minilang import parse


def races_for(src, with_cfgs=False, interprocedural=True):
    prog = parse(src)
    cfgs = build_program_cfgs(prog) if with_cfgs else None
    return find_races(prog, cfgs=cfgs, interprocedural=interprocedural)


def region_table(report, kind=None, index=0):
    regions = [r for r in report.regions if kind is None or r.kind == kind]
    return regions[index].sharing


PROG = "program t;\n"


class TestClassification:
    def test_default_sharing_outer_local_is_shared(self):
        report = races_for(PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        x = x + 1;
    }
}""")
        assert region_table(report, "parallel")["x"] == SHARED
        # x = x + 1 races both read/write and write/write
        assert len(report.candidates) == 2

    def test_global_is_shared(self):
        report = races_for(PROG + "var g;\n" + """
func main() {
    omp parallel num_threads(2) {
        g = g + 1;
    }
}""")
        assert region_table(report, "parallel")["g"] == SHARED
        assert report.candidates[0].scope == "<global>"

    def test_in_region_declaration_is_private(self):
        report = races_for(PROG + """
func main() {
    omp parallel num_threads(2) {
        var t = 0;
        t = t + 1;
    }
}""")
        assert region_table(report, "parallel")["t"] == PRIVATE
        assert not report.candidates

    def test_private_clause(self):
        report = races_for(PROG + """
func main() {
    var t = 0;
    omp parallel num_threads(2) private(t) {
        t = t + 1;
    }
}""")
        assert region_table(report, "parallel")["t"] == PRIVATE
        assert not report.candidates

    def test_firstprivate_clause(self):
        report = races_for(PROG + """
func main() {
    var t = 0;
    omp parallel num_threads(2) firstprivate(t) {
        t = t + 1;
    }
}""")
        assert region_table(report, "parallel")["t"] == FIRSTPRIVATE
        assert not report.candidates

    def test_reduction_clause_on_parallel(self):
        report = races_for(PROG + """
func main() {
    var s = 0;
    omp parallel num_threads(2) reduction(+: s) {
        s = s + 1;
    }
}""")
        assert region_table(report, "parallel")["s"] == REDUCTION
        assert not report.candidates

    def test_reduction_clause_on_omp_for(self):
        report = races_for(PROG + """
func main() {
    var s = 0;
    omp parallel num_threads(2) {
        omp for reduction(+: s) for (var i = 0; i < 8; i = i + 1) {
            s = s + i;
        }
    }
}""")
        assert region_table(report, "for")["s"] == REDUCTION
        assert not report.candidates

    def test_loop_index_is_private_even_when_reused(self):
        # the omp-for index is re-declared per iteration by the runtime,
        # so reusing an outer variable does not make it a shared race
        report = races_for(PROG + """
func main() {
    var z = 0;
    omp parallel num_threads(2) {
        omp for for (z = 0; z < 8; z = z + 1) {
        }
    }
}""")
        assert region_table(report, "for")["z"] == LOOP_INDEX
        assert not report.candidates

    def test_sequential_code_never_races(self):
        report = races_for(PROG + """
func main() {
    var x = 0;
    x = x + 1;
}""")
        assert not report.accesses and not report.candidates


class TestPairing:
    def test_read_only_sharing_is_race_free(self):
        report = races_for(PROG + """
func main() {
    var x = 7;
    var out[4];
    omp parallel num_threads(2) {
        omp for for (var i = 0; i < 4; i = i + 1) {
            out[i] = x;
        }
    }
}""")
        assert not any(c.var == "x" for c in report.candidates)

    def test_write_write_and_read_write_pairs(self):
        report = races_for(PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        x = x + 1;
    }
}""")
        kinds = sorted(
            tuple(sorted((c.a.kind, c.b.kind))) for c in report.candidates
        )
        assert kinds == [("read", "write"), ("write", "write")]
        assert report.monitored_vars == frozenset({"x"})

    def test_candidate_carries_both_sites(self):
        report = races_for(PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        x = 1;
    }
}""")
        (cand,) = report.candidates
        assert cand.var == "x"
        assert cand.a.loc and cand.b.loc
        assert "unsynchronized" in cand.reason
        assert cand.locs() == tuple(sorted({cand.a.loc, cand.b.loc}))


class TestPruning:
    def test_critical_guard_prunes(self):
        report = races_for(PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        omp critical(m) { x = x + 1; }
    }
}""")
        assert not report.candidates
        assert report.pruned[PRUNE_RACE_LOCK] > 0

    def test_differently_named_criticals_do_not_prune(self):
        report = races_for(PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        omp critical(m1) { x = x + 1; }
        omp critical(m2) { x = x + 1; }
    }
}""")
        assert report.candidates

    def test_atomic_guard_prunes(self):
        report = races_for(PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        omp atomic x = x + 1;
    }
}""")
        assert not report.candidates
        assert report.pruned[PRUNE_RACE_LOCK] > 0

    def test_must_held_user_lock_prunes_with_cfgs(self):
        src = PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        omp_set_lock("m");
        x = x + 1;
        omp_unset_lock("m");
    }
}"""
        assert not races_for(src, with_cfgs=True).candidates
        # without CFGs the lexical pass alone cannot see the lock
        assert races_for(src, with_cfgs=False).candidates

    def test_master_only_accesses_pruned(self):
        report = races_for(PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        omp master { x = x + 1; }
    }
}""")
        assert not report.candidates
        assert report.pruned[PRUNE_RACE_GUARD] > 0

    def test_single_accesses_pruned(self):
        report = races_for(PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        omp single { x = x + 1; }
    }
}""")
        assert not report.candidates
        assert report.pruned[PRUNE_RACE_GUARD] > 0

    def test_distinct_parallel_regions_mhp_pruned(self):
        report = races_for(PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        omp single { x = 1; }
    }
    omp parallel num_threads(2) {
        omp single { x = 2; }
    }
}""")
        assert not report.candidates
        assert report.pruned[PRUNE_RACE_MHP] > 0

    def test_barrier_separated_phases_mhp_pruned(self):
        report = races_for(PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        omp single nowait { x = 1; }
        omp barrier;
        omp single nowait { x = 2; }
    }
}""")
        assert not report.candidates
        assert report.pruned[PRUNE_RACE_MHP] > 0

    def test_report_counters_cover_all_kinds(self):
        report = StaticRaceReport()
        assert set(report.pruned) == set(RACE_PRUNE_KINDS)
        assert report.total_pruned == 0


class TestSubscripts:
    def test_siv_same_index_is_disjoint(self):
        report = races_for(PROG + "var a[8];\n" + """
func main() {
    omp parallel num_threads(2) {
        omp for for (var i = 0; i < 8; i = i + 1) {
            a[i] = a[i] + 1;
        }
    }
}""")
        assert not report.candidates
        assert report.pruned[PRUNE_RACE_SUBSCRIPT] > 0

    def test_loop_carried_shift_is_flagged(self):
        report = races_for(PROG + "var a[8];\n" + """
func main() {
    omp parallel num_threads(2) {
        omp for for (var i = 0; i < 7; i = i + 1) {
            a[i + 1] = a[i] + 1;
        }
    }
}""")
        assert any(c.var == "a" for c in report.candidates)
        assert any("disjoint" in c.reason for c in report.candidates)

    def test_scaled_index_is_disjoint(self):
        report = races_for(PROG + "var a[16];\n" + """
func main() {
    omp parallel num_threads(2) {
        omp for for (var i = 0; i < 8; i = i + 1) {
            a[i * 2] = 1;
        }
    }
}""")
        assert not report.candidates

    def test_ziv_distinct_constants_disjoint(self):
        report = races_for(PROG + "var a[8];\n" + """
func main() {
    omp parallel num_threads(2) {
        omp sections {
            omp section { a[0] = 1; }
            omp section { a[1] = 2; }
        }
    }
}""")
        assert not report.candidates

    def test_ziv_same_constant_is_flagged(self):
        report = races_for(PROG + "var a[8];\n" + """
func main() {
    omp parallel num_threads(2) {
        omp sections {
            omp section { a[0] = 1; }
            omp section { a[0] = 2; }
        }
    }
}""")
        assert any(c.var == "a" for c in report.candidates)

    def test_thread_id_distribution_is_disjoint(self):
        report = races_for(PROG + "var a[8];\n" + """
func main() {
    omp parallel num_threads(2) {
        a[omp_get_thread_num()] = 1;
    }
}""")
        assert not report.candidates

    def test_nonlinear_subscript_is_flagged(self):
        report = races_for(PROG + "var a[8]; var idx[8];\n" + """
func main() {
    omp parallel num_threads(2) {
        omp for for (var i = 0; i < 8; i = i + 1) {
            a[idx[i]] = 1;
        }
    }
}""")
        assert any(c.var == "a" for c in report.candidates)


class TestInterprocedural:
    SRC = PROG + "var g; var field[8];\n" + """
func work(e) {
    g = g + 1;
    field[e] = field[e] + 1;
}

func main() {
    omp parallel num_threads(2) {
        work(omp_get_thread_num());
    }
}"""

    def test_global_scalar_reached_from_parallel_is_paired(self):
        report = races_for(self.SRC)
        assert any(c.var == "g" for c in report.candidates)
        cand = next(c for c in report.candidates if c.var == "g")
        assert "reached from a parallel region" in cand.reason

    def test_param_subscript_array_is_resolved_by_summaries(self):
        # field[e] with e = omp_get_thread_num() at the call site: the
        # summary instantiation proves per-thread disjointness, so the
        # access is analyzed (and pruned) instead of delegated
        report = races_for(self.SRC)
        assert any(s.var == "field" for s in report.resolved_interproc)
        assert not any(s.var == "field" for s in report.unresolved)
        assert not any(c.var == "field" for c in report.candidates)
        assert report.pruned["race-interproc"] >= 1

    def test_param_subscript_delegated_without_summaries(self):
        report = races_for(self.SRC, interprocedural=False)
        assert any(s.var == "field" for s in report.unresolved)
        assert not any(c.var == "field" for c in report.candidates)

    def test_nonlinear_argument_stays_delegated(self):
        # idx[i] is not linear in any distribution symbol: the summary
        # escapes the access, which must stay delegated to dynamic
        report = races_for(PROG + "var field[8]; var idx[8];\n" + """
func work(e) {
    field[e] = field[e] + 1;
}

func main() {
    omp parallel num_threads(2) {
        omp for for (var i = 0; i < 8; i = i + 1) {
            work(idx[i]);
        }
    }
}""")
        assert any(s.var == "field" for s in report.unresolved)
        assert not any(s.var == "field" for s in report.resolved_interproc)

    def test_loop_distributed_argument_is_resolved(self):
        # work(z) under the omp for: instantiated SIV pruning applies
        report = races_for(PROG + "var field[64];\n" + """
func work(z) {
    field[z] = field[z] + 1;
}

func main() {
    omp parallel num_threads(2) {
        omp for for (var z = 0; z < 8; z = z + 1) {
            work(z);
        }
    }
}""")
        assert any(s.var == "field" for s in report.resolved_interproc)
        assert not any(c.var == "field" for c in report.candidates)

    def test_loop_shifted_argument_races_across_calls(self):
        # work reads field[e] and writes field[e + 1]: loop-carried
        # conflict, visible only through the summary instantiation
        report = races_for(PROG + "var field[64];\n" + """
func work(e) {
    field[e + 1] = field[e] + 1;
}

func main() {
    omp parallel num_threads(2) {
        omp for for (var z = 0; z < 8; z = z + 1) {
            work(z);
        }
    }
}""")
        assert any(c.var == "field" for c in report.candidates)
        cand = next(c for c in report.candidates if c.var == "field")
        assert "instantiated from work" in cand.reason

    def test_function_not_called_from_parallel_is_quiet(self):
        report = races_for(PROG + "var g;\n" + """
func sequential_work() {
    g = g + 1;
}

func main() {
    sequential_work();
}""")
        assert not report.candidates and not report.accesses


class TestReportPlumbing:
    def test_as_dict_shape(self):
        report = races_for(PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        x = 1;
    }
}""")
        data = report.as_dict()
        assert data["monitored_vars"] == ["x"]
        (cand,) = [c for c in data["candidates"] if c["var"] == "x"]
        assert cand["a"]["loc"] and cand["b"]["loc"]
        assert set(data["pruned"]) >= set(RACE_PRUNE_KINDS)

    def test_static_report_integration(self):
        prog = parse(PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        x = x + 1;
    }
}""")
        static = run_static_analysis(prog)
        assert static.races is not None
        assert static.races.monitored_vars == frozenset({"x"})
        assert "x" in static.instrumentation.monitored_vars
        assert "static race candidates" in static.summary()
        assert "races" in static.as_dict()
        prunes = static.prune_counts()
        assert set(prunes) >= set(RACE_PRUNE_KINDS)

    def test_races_flag_off(self):
        prog = parse(PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        x = x + 1;
    }
}""")
        static = run_static_analysis(prog, races=False)
        assert static.races is None
        assert not static.instrumentation.monitored_vars
