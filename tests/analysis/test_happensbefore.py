"""Happens-before computation over real interpreter traces."""

import pytest

from helpers import run_main

from repro.analysis.dynamic_.happensbefore import compute_happens_before
from repro.events import LockAcquire, LockRelease, MemAccess


def hb_for(body, **kw):
    kw.setdefault("monitor_memory", True)
    result = run_main(body, **kw)
    return result, compute_happens_before(result.log, 0, **{
        k: kw.pop(k) for k in () })


def mem_events(result, var):
    return [e for e in result.log.of_type(MemAccess) if e.var == var]


class TestProgramOrder:
    def test_same_thread_events_ordered(self):
        body = """
var x = 0;
omp parallel num_threads(2) {
    x = x + 1;
    x = x + 2;
}
"""
        result = run_main(body, monitor_memory=True)
        hb = compute_happens_before(result.log, 0)
        per_thread = {}
        for e in mem_events(result, "x"):
            per_thread.setdefault(e.thread, []).append(e)
        for evs in per_thread.values():
            for a, b in zip(evs, evs[1:]):
                assert hb.clocks[a.seq].happens_before(hb.clocks[b.seq])


class TestForkJoin:
    def test_pre_fork_writes_ordered_before_worker_reads(self):
        body = """
var x = 1;
omp parallel num_threads(2) {
    var y = x;
    compute(1);
}
"""
        result = run_main(body, monitor_memory=True)
        hb = compute_happens_before(result.log, 0)
        events = mem_events(result, "x")
        writes = [e for e in events if e.is_write]
        reads = [e for e in events if not e.is_write]
        # NOTE: the initial declaration happens before monitoring starts
        # (outside any parallel region); reads inside the region exist.
        assert reads
        for a in writes:
            for b in reads:
                assert hb.ordered(a.seq, b.seq)

    def test_post_join_reads_ordered_after_worker_writes(self):
        body = """
var x = 0;
omp parallel num_threads(2) {
    omp critical { x = x + 1; }
}
omp parallel num_threads(2) {
    var y = x;
}
"""
        result = run_main(body, monitor_memory=True)
        hb = compute_happens_before(result.log, 0)
        events = mem_events(result, "x")
        writes = [e for e in events if e.is_write]
        reads = [e for e in events if not e.is_write and e.seq > max(w.seq for w in writes)]
        assert reads
        for w in writes:
            for r in reads:
                assert hb.ordered(w.seq, r.seq)


class TestConcurrency:
    RACY = """
var x = 0;
omp parallel num_threads(2) {
    x = x + 1;
}
"""

    def test_unsynchronized_writes_concurrent(self):
        result = run_main(self.RACY, monitor_memory=True)
        hb = compute_happens_before(result.log, 0)
        writes = [e for e in mem_events(result, "x") if e.is_write]
        by_thread = {}
        for e in writes:
            by_thread.setdefault(e.thread, e)
        threads = list(by_thread.values())
        assert len(threads) == 2
        assert hb.concurrent(threads[0].seq, threads[1].seq)

    def test_barrier_orders_across_threads(self):
        body = """
var x = 0;
omp parallel num_threads(2) {
    if (omp_get_thread_num() == 0) { x = 1; }
    omp barrier;
    if (omp_get_thread_num() == 1) { x = 2; }
}
"""
        result = run_main(body, monitor_memory=True)
        hb = compute_happens_before(result.log, 0)
        writes = [e for e in mem_events(result, "x") if e.is_write]
        assert len(writes) == 2
        a, b = sorted(writes, key=lambda e: e.seq)
        assert hb.clocks[a.seq].happens_before(hb.clocks[b.seq])


class TestLockEdges:
    CRITICAL = """
var x = 0;
omp parallel num_threads(2) {
    omp critical { x = x + 1; }
}
"""

    def _write_pair(self, result):
        writes = [e for e in result.log.of_type(MemAccess)
                  if e.var == "x" and e.is_write]
        by_thread = {}
        for e in writes:
            by_thread.setdefault(e.thread, e)
        return list(by_thread.values())

    def test_critical_creates_order_with_lock_edges(self):
        result = run_main(self.CRITICAL, monitor_memory=True)
        hb = compute_happens_before(result.log, 0, lock_edges=True)
        a, b = self._write_pair(result)
        assert hb.ordered(a.seq, b.seq)

    def test_without_lock_edges_writes_concurrent(self):
        result = run_main(self.CRITICAL, monitor_memory=True)
        hb = compute_happens_before(result.log, 0, lock_edges=False)
        a, b = self._write_pair(result)
        assert hb.concurrent(a.seq, b.seq)

    def test_locksets_disjointness(self):
        result = run_main(self.CRITICAL, monitor_memory=True)
        hb = compute_happens_before(result.log, 0)
        a, b = self._write_pair(result)
        # Both writes hold the same critical lock.
        assert not hb.disjoint_locks(a.seq, b.seq)

    def test_ignored_locks_predicate(self):
        body = """
var x = 0;
omp parallel num_threads(2) {
    omp critical (named) { x = x + 1; }
}
"""
        result = run_main(body, monitor_memory=True)
        hb = compute_happens_before(
            result.log, 0,
            ignored_locks=lambda name: "named" in name,
        )
        a, b = self._write_pair(result)
        assert hb.concurrent(a.seq, b.seq)
        assert hb.disjoint_locks(a.seq, b.seq)

    def test_ignored_locks_set(self):
        result = run_main(self.CRITICAL, monitor_memory=True)
        hb = compute_happens_before(
            result.log, 0, ignored_locks={"critical:<anonymous>"}
        )
        a, b = self._write_pair(result)
        assert hb.concurrent(a.seq, b.seq)

    def test_lockset_snapshot_inside_critical(self):
        result = run_main(self.CRITICAL, monitor_memory=True)
        hb = compute_happens_before(result.log, 0)
        writes = [e for e in result.log.of_type(MemAccess)
                  if e.var == "x" and e.is_write]
        for w in writes:
            assert "critical:<anonymous>" in hb.locks_held[w.seq]
