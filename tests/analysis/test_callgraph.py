"""Call-graph construction: edges, recursion, bottom-up order, spawn
reachability, context opacity, the guard meet, and parallel-context
resolution with root-nid propagation through call chains."""

from repro.analysis.static_ import (
    GUARD_BOTTOM,
    build_callgraph,
    parallel_guard_contexts,
    resolve_parallel_contexts,
)
from repro.analysis.static_.dataflow import compute_mhp
from repro.minilang import parse

PROG = "program t;\n"


def cg_for(src):
    return build_callgraph(parse(src))


class TestGraphShape:
    SRC = PROG + """
func leaf(x) {
    return x;
}
func mid(x) {
    return leaf(x + 1);
}
func main() {
    mid(1);
    leaf(2);
}"""

    def test_edges_and_site_indexes(self):
        cg = cg_for(self.SRC)
        assert set(cg.graph.edges()) == {
            ("main", "mid"), ("main", "leaf"), ("mid", "leaf"),
        }
        assert {cs.caller for cs in cg.sites_by_callee["leaf"]} == {
            "main", "mid",
        }
        assert len(cg.sites_by_caller["main"]) == 2
        assert cg.user_funcs == {"leaf", "mid", "main"}

    def test_bottom_up_order_callees_first(self):
        cg = cg_for(self.SRC)
        order = cg.bottom_up
        assert order.index("leaf") < order.index("mid") < order.index("main")

    def test_call_site_args_recorded(self):
        cg = cg_for(self.SRC)
        (site,) = cg.sites_by_callee["mid"]
        assert len(site.args) == 1

    def test_no_recursion_detected(self):
        assert cg_for(self.SRC).recursive == frozenset()


class TestRecursion:
    def test_self_loop(self):
        cg = cg_for(PROG + """
func f(n) {
    if (n > 0) {
        f(n - 1);
    }
    return 0;
}
func main() {
    f(3);
}""")
        assert cg.recursive == {"f"}

    def test_mutual_scc(self):
        cg = cg_for(PROG + """
func a(n) {
    if (n > 0) {
        b(n - 1);
    }
    return 0;
}
func b(n) {
    if (n > 0) {
        a(n - 1);
    }
    return 0;
}
func main() {
    a(4);
}""")
        assert cg.recursive == {"a", "b"}
        # SCC members still appear before their non-SCC caller
        assert cg.bottom_up.index("a") < cg.bottom_up.index("main")
        assert cg.bottom_up.index("b") < cg.bottom_up.index("main")


class TestReachability:
    SPAWN = PROG + """
func deep() {
    return 0;
}
func worker(n) {
    deep();
    return 0;
}
func untouched() {
    return 0;
}
func main() {
    var t = thread_spawn("worker", 1);
    thread_join(t);
    untouched();
}"""

    def test_spawn_reachable_is_transitive(self):
        cg = cg_for(self.SPAWN)
        assert cg.spawn_reachable == {"worker", "deep"}
        (site,) = cg.sites_by_callee["worker"]
        assert site.spawned

    def test_spawned_targets_count_as_parallel_reached(self):
        cg = cg_for(self.SPAWN)
        assert "worker" in cg.reached_from_parallel
        assert "deep" in cg.reached_from_parallel
        assert "untouched" not in cg.reached_from_parallel

    def test_reached_from_parallel_via_region(self):
        cg = cg_for(PROG + """
func helper() {
    return 0;
}
func sub() {
    helper();
    return 0;
}
func seq_only() {
    return 0;
}
func main() {
    omp parallel num_threads(2) {
        sub();
    }
    seq_only();
}""")
        assert {"sub", "helper"} <= cg.reached_from_parallel
        assert "seq_only" not in cg.reached_from_parallel


class TestContextFields:
    def test_lexical_context_captured(self):
        cg = cg_for(PROG + """
func helper(i) {
    return i;
}
func main() {
    omp parallel num_threads(2) {
        omp for
        for (var i = 0; i < 4; i = i + 1) {
            omp critical(tally) {
                helper(i);
            }
        }
    }
}""")
        (site,) = cg.sites_by_callee["helper"]
        assert site.region is not None and site.parallel_depth == 1
        assert site.omp_for is not None and site.loop_var == "i"
        assert site.criticals == ("tally",)
        assert site.guards  # critical token present

    def test_serialized_master_in_loop(self):
        cg = cg_for(PROG + """
func helper() {
    return 0;
}
func main() {
    omp parallel num_threads(2) {
        for (var k = 0; k < 3; k = k + 1) {
            omp master {
                helper();
            }
        }
    }
}""")
        (site,) = cg.sites_by_callee["helper"]
        # master is one fixed thread: serialized even across encounters
        assert site.in_master and site.master_only and site.serialized

    def test_nowait_single_in_loop_not_serialized(self):
        cg = cg_for(PROG + """
func helper() {
    return 0;
}
func main() {
    omp parallel num_threads(2) {
        for (var k = 0; k < 3; k = k + 1) {
            omp single nowait {
                helper();
            }
        }
    }
}""")
        (site,) = cg.sites_by_callee["helper"]
        assert site.in_master and not site.master_only
        assert site.single is not None and not site.single[1]
        assert not site.serialized

    def test_serial_single_is_serialized(self):
        cg = cg_for(PROG + """
func helper() {
    return 0;
}
func main() {
    omp parallel num_threads(2) {
        omp single {
            helper();
        }
    }
}""")
        (site,) = cg.sites_by_callee["helper"]
        assert site.serialized and not site.master_only

    def test_context_opaque_constructs(self):
        cg = cg_for(PROG + """
func forks() {
    omp parallel num_threads(2) {
        compute(1);
    }
    return 0;
}
func syncs() {
    omp barrier;
    return 0;
}
func plain(i) {
    return i + 1;
}
func main() {
    forks();
    syncs();
    plain(0);
}""")
        assert {"forks", "syncs"} <= cg.context_opaque
        assert "plain" not in cg.context_opaque


class TestGuardContexts:
    def test_unguarded_path_drives_meet_to_bottom(self):
        cg = cg_for(PROG + """
func helper() {
    return 0;
}
func main() {
    omp parallel num_threads(2) {
        omp master {
            helper();
        }
        helper();
    }
}""")
        guards = parallel_guard_contexts(cg)
        assert guards["helper"] == GUARD_BOTTOM

    def test_all_paths_guarded_keeps_master(self):
        cg = cg_for(PROG + """
func leaf() {
    return 0;
}
func mid() {
    leaf();
    return 0;
}
func main() {
    omp parallel num_threads(2) {
        omp master {
            mid();
        }
    }
}""")
        guards = parallel_guard_contexts(cg)
        assert guards["mid"].in_master
        # inherited through the chain: leaf is only reached under master
        assert guards["leaf"].in_master

    def test_critical_names_intersect_across_paths(self):
        cg = cg_for(PROG + """
func helper() {
    return 0;
}
func main() {
    omp parallel num_threads(2) {
        omp critical(a) {
            omp critical(b) {
                helper();
            }
        }
        omp critical(a) {
            helper();
        }
    }
}""")
        guards = parallel_guard_contexts(cg)
        assert guards["helper"].criticals == frozenset({"a"})


class TestResolvedContexts:
    def test_chain_shares_root_nid(self):
        prog = parse(PROG + """
func leaf() {
    return 0;
}
func mid() {
    leaf();
    return 0;
}
func main() {
    omp parallel num_threads(2) {
        omp master {
            mid();
        }
    }
}""")
        cg = build_callgraph(prog)
        mhp = compute_mhp(prog, record_all=True, implicit_ws_barriers=True)
        ctx = resolve_parallel_contexts(cg, mhp)
        assert ctx["mid"].serialized and ctx["leaf"].serialized
        assert ctx["mid"].nid == ctx["leaf"].nid  # one chain identity
        assert len(ctx["leaf"].info.regions) == 1

    def test_multiple_call_sites_unresolved(self):
        prog = parse(PROG + """
func helper() {
    return 0;
}
func main() {
    omp parallel num_threads(2) {
        helper();
    }
    helper();
}""")
        cg = build_callgraph(prog)
        mhp = compute_mhp(prog, record_all=True)
        assert "helper" not in resolve_parallel_contexts(cg, mhp)

    def test_opaque_and_spawned_unresolved(self):
        prog = parse(PROG + """
func forks() {
    omp parallel num_threads(2) {
        compute(1);
    }
    return 0;
}
func worker(n) {
    return 0;
}
func main() {
    forks();
    var t = thread_spawn("worker", 1);
    thread_join(t);
}""")
        cg = build_callgraph(prog)
        mhp = compute_mhp(prog, record_all=True)
        ctx = resolve_parallel_contexts(cg, mhp)
        assert "forks" not in ctx
        assert "worker" not in ctx
