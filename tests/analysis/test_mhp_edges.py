"""MHP edge cases: conditional barriers disabling phase pruning,
``omp sections`` serialization, nested-parallel exclusion, and the
implicit worksharing barriers the static race pass opts into."""

from repro.analysis.static_.dataflow import compute_mhp, may_happen_in_parallel
from repro.analysis.static_.races import PRUNE_RACE_MHP, find_races
from repro.minilang import ast_nodes as A
from repro.minilang import parse


def infos_for(src, var, record_all=True, implicit_ws_barriers=True):
    """MHPInfo of every ``Name`` occurrence of *var*, in source order."""
    prog = parse(src)
    mhp = compute_mhp(
        prog, record_all=record_all, implicit_ws_barriers=implicit_ws_barriers
    )
    out = []
    for fn in prog.functions:
        for node in fn.body.walk():
            if isinstance(node, A.Name) and node.ident == var and node.nid in mhp:
                out.append(mhp[node.nid])
    return out


PROG = "program t;\n"


class TestConditionalBarriers:
    COND_BARRIER = PROG + """
func main() {
    var x = 0;
    var flag = 1;
    omp parallel num_threads(2) {
        omp single nowait { x = 1; }
        if (flag == 1) {
            omp barrier;
        }
        omp single nowait { x = 2; }
    }
}"""

    def test_conditional_barrier_marks_phases_unreliable(self):
        first, second = infos_for(self.COND_BARRIER, "x")
        assert not first.phase_reliable
        assert not second.phase_reliable

    def test_unreliable_phases_do_not_prune(self):
        a, b = infos_for(self.COND_BARRIER, "x")
        assert may_happen_in_parallel(a, b)
        report = find_races(parse(self.COND_BARRIER))
        assert any(c.var == "x" for c in report.candidates)

    def test_unconditional_barrier_does_prune(self):
        src = self.COND_BARRIER.replace(
            "if (flag == 1) {\n            omp barrier;\n        }",
            "omp barrier;",
        )
        a, b = infos_for(src, "x")
        assert a.phase_reliable and b.phase_reliable and a.phase != b.phase
        assert not may_happen_in_parallel(a, b)

    def test_barrier_in_loop_is_conditional(self):
        src = PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        omp single nowait { x = 1; }
        for (var i = 0; i < 2; i = i + 1) {
            omp barrier;
        }
        omp single nowait { x = 2; }
    }
}"""
        a, b = infos_for(src, "x")
        assert not (a.phase_reliable and b.phase_reliable)
        assert may_happen_in_parallel(a, b)


class TestSectionsSerialization:
    def test_same_section_is_serial(self):
        src = PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        omp sections {
            omp section { x = 1; x = 2; }
        }
    }
}"""
        a, b = infos_for(src, "x")
        assert a.section == b.section and a.section_serial
        assert not may_happen_in_parallel(a, b)
        report = find_races(parse(src))
        assert not report.candidates
        assert report.pruned[PRUNE_RACE_MHP] > 0

    def test_different_sections_may_race(self):
        src = PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        omp sections {
            omp section { x = 1; }
            omp section { x = 2; }
        }
    }
}"""
        a, b = infos_for(src, "x")
        assert a.section != b.section
        assert may_happen_in_parallel(a, b)
        assert find_races(parse(src)).candidates

    def test_nowait_sections_in_loop_not_serial(self):
        # encounters of a nowait sections inside a loop can overlap, so
        # even same-section statements are not provably ordered
        src = PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        for (var i = 0; i < 2; i = i + 1) {
            omp sections nowait {
                omp section { x = 1; x = 2; }
            }
        }
    }
}"""
        a, b = infos_for(src, "x")
        assert a.section == b.section and not a.section_serial
        assert may_happen_in_parallel(a, b)

    def test_sections_closing_barrier_bumps_phase(self):
        src = PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        omp sections {
            omp section { x = 1; }
        }
        omp single nowait { x = 2; }
    }
}"""
        a, b = infos_for(src, "x")
        assert a.phase != b.phase
        assert not may_happen_in_parallel(a, b)


class TestNestedParallel:
    NESTED = PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        omp parallel num_threads(2) {
            omp single nowait { x = 1; }
            omp barrier;
            omp single nowait { x = 2; }
        }
    }
}"""

    def test_nested_regions_never_phase_pruned(self):
        # inner-region instances may overlap across outer threads, so
        # even barrier-separated phases cannot prune
        a, b = infos_for(self.NESTED, "x")
        assert len(a.regions) == 2
        assert may_happen_in_parallel(a, b)
        assert any(c.var == "x" for c in find_races(parse(self.NESTED)).candidates)

    def test_function_reached_from_parallel_is_excluded(self):
        src = PROG + "var g;\n" + """
func helper() {
    omp parallel num_threads(2) {
        omp single { g = 1; }
    }
}

func main() {
    omp parallel num_threads(2) {
        helper();
    }
}"""
        a = infos_for(src, "g")[0]
        # helper's region structure looks prunable on its own...
        assert len(a.regions) == 1
        # ...but reachability from a parallel region disables pruning
        assert may_happen_in_parallel(a, a, unsafe_funcs={"helper"})
        assert any(c.var == "g" for c in find_races(parse(src)).candidates)


class TestImplicitWorksharingBarriers:
    TWO_LOOPS = PROG + "var a[8]; var b[8];\n" + """
func main() {
    omp parallel num_threads(2) {
        omp for%s for (var i = 0; i < 8; i = i + 1) {
            a[i + 1] = 1;
        }
        omp for for (var j = 0; j < 8; j = j + 1) {
            a[j] = 2;
        }
    }
}"""

    def test_closing_barrier_separates_loops(self):
        report = find_races(parse(self.TWO_LOOPS % ""))
        assert not report.candidates
        assert report.pruned[PRUNE_RACE_MHP] > 0

    def test_nowait_keeps_loops_concurrent(self):
        report = find_races(parse(self.TWO_LOOPS % " nowait"))
        assert any(c.var == "a" for c in report.candidates)

    def test_mpi_candidate_path_keeps_coarse_phases(self):
        # the default MHP (no implicit_ws_barriers) must not bump
        # phases, keeping the PR-1 MPI-candidate counts stable
        src = PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        omp for for (var i = 0; i < 4; i = i + 1) { }
        omp single nowait { x = 1; }
    }
}"""
        (info,) = infos_for(src, "x", implicit_ws_barriers=False)
        assert info.phase == 0
        (info,) = infos_for(src, "x", implicit_ws_barriers=True)
        assert info.phase == 1


class TestNowaitRegionExits:
    """Satellite audit of ``implicit_ws_barriers`` against nowait-style
    region exits: only the *closing* barrier of a non-nowait worksharing
    construct bumps the phase, every nowait variant leaves it alone, and
    a worksharing construct under a conditional poisons phase
    reliability exactly like a conditional explicit barrier."""

    WS = PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        omp single nowait { x = 1; }
        %s
        omp single nowait { x = 2; }
    }
}"""

    def _phases(self, construct):
        first, second = infos_for(self.WS % construct, "x")
        return first, second

    def test_single_nowait_exit_does_not_bump_phase(self):
        a, b = self._phases("omp single nowait { compute(1); }")
        assert a.phase == b.phase
        assert may_happen_in_parallel(a, b)

    def test_single_exit_bumps_phase(self):
        a, b = self._phases("omp single { compute(1); }")
        assert b.phase == a.phase + 1
        assert not may_happen_in_parallel(a, b)

    def test_for_nowait_exit_does_not_bump_phase(self):
        a, b = self._phases(
            "omp for nowait for (var i = 0; i < 4; i = i + 1) { compute(1); }"
        )
        assert a.phase == b.phase
        assert may_happen_in_parallel(a, b)

    def test_sections_exit_bumps_phase(self):
        a, b = self._phases(
            "omp sections { omp section { compute(1); } "
            "omp section { compute(2); } }"
        )
        assert b.phase == a.phase + 1
        assert not may_happen_in_parallel(a, b)

    def test_sections_nowait_exit_does_not_bump_phase(self):
        a, b = self._phases(
            "omp sections nowait { omp section { compute(1); } }"
        )
        assert a.phase == b.phase
        assert may_happen_in_parallel(a, b)

    def test_conditional_worksharing_exit_poisons_reliability(self):
        # the closing barrier only executes on threads entering the If,
        # which is the same unreliability as a conditional omp barrier
        a, b = self._phases(
            "if (1 == 1) { omp for for (var i = 0; i < 4; i = i + 1) { } }"
        )
        assert not a.phase_reliable and not b.phase_reliable
        assert may_happen_in_parallel(a, b)


class TestNestedParallelPhases:
    """Nested parallel regions never phase-prune (instances overlap)."""

    NESTED_WS = PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        omp parallel num_threads(2) {
            omp single nowait { x = 1; }
            omp barrier;
            omp single nowait { x = 2; }
        }
    }
}"""

    def test_nested_region_sites_never_pruned(self):
        a, b = infos_for(self.NESTED_WS, "x")
        assert len(a.regions) == 2 and a.regions == b.regions
        assert a.phase != b.phase
        # the barrier orders phases *within one inner-team instance*,
        # but sibling inner teams overlap freely: no pruning
        assert may_happen_in_parallel(a, b)

    def test_outer_phase_unaffected_by_inner_constructs(self):
        src = PROG + """
func main() {
    var x = 0;
    omp parallel num_threads(2) {
        omp single nowait { x = 1; }
        omp parallel num_threads(2) {
            omp single { compute(1); }
        }
        omp single nowait { x = 2; }
    }
}"""
        a, b = infos_for(src, "x")
        # the inner region's implicit exits must not leak into the
        # outer region's phase counter
        assert a.phase == b.phase
        assert a.regions == b.regions == (a.regions[0],)


def resolved_infos(src, var):
    """(program, MHPInfos of *var* in source order, contexts, callgraph)."""
    from repro.analysis.static_ import build_callgraph, resolve_parallel_contexts

    prog = parse(src)
    mhp = compute_mhp(prog, record_all=True, implicit_ws_barriers=True)
    cg = build_callgraph(prog)
    contexts = resolve_parallel_contexts(cg, mhp)
    infos = [
        mhp[node.nid]
        for fn in prog.functions
        for node in fn.body.walk()
        if isinstance(node, A.Name) and node.ident == var and node.nid in mhp
    ]
    return prog, infos, contexts, cg


class TestContextResolvedMHP:
    """Summary-derived MHP answers for sites visible only through calls."""

    MASTER_FUNNEL = PROG + """
var g;
func helper() {
    g = g + 1;
    return 0;
}
func main() {
    omp parallel num_threads(2) {
        omp master {
            helper();
        }
    }
}"""

    def test_call_under_master_serializes_helper_accesses(self):
        prog, (a, b), contexts, cg = resolved_infos(self.MASTER_FUNNEL, "g")
        assert not a.regions and not b.regions  # only interprocedurally parallel
        ctx = contexts["helper"]
        assert ctx.serialized and len(ctx.info.regions) == 1
        # legacy answer: context unknown -> maybe
        assert may_happen_in_parallel(a, b, {"helper"})
        # summary-derived answer: one thread per encounter, encounters ordered
        assert not may_happen_in_parallel(a, b, {"helper"}, contexts=contexts)

    def test_call_under_master_prunes_race_candidate(self):
        report = find_races(parse(self.MASTER_FUNNEL))
        assert not any(c.var == "g" for c in report.candidates)
        assert report.pruned.get(PRUNE_RACE_MHP, 0) >= 1
        legacy = find_races(parse(self.MASTER_FUNNEL), interprocedural=False)
        assert any(c.var == "g" for c in legacy.candidates)

    def test_two_level_chain_shares_root_context(self):
        src = PROG + """
var g;
func leaf() {
    g = g + 1;
    return 0;
}
func mid() {
    leaf();
    return 0;
}
func main() {
    omp parallel num_threads(2) {
        omp master {
            mid();
        }
    }
}"""
        prog, (a, b), contexts, cg = resolved_infos(src, "g")
        assert contexts["leaf"].nid == contexts["mid"].nid  # one chain identity
        assert contexts["leaf"].serialized
        assert not may_happen_in_parallel(a, b, {"leaf", "mid"}, contexts=contexts)
        assert not any(c.var == "g" for c in find_races(prog).candidates)

    def test_call_under_serial_single_serializes(self):
        src = self.MASTER_FUNNEL.replace("omp master", "omp single")
        prog, (a, b), contexts, cg = resolved_infos(src, "g")
        assert contexts["helper"].serialized
        assert not may_happen_in_parallel(a, b, {"helper"}, contexts=contexts)
        assert not any(c.var == "g" for c in find_races(prog).candidates)

    def test_call_under_nowait_single_in_loop_stays_maybe(self):
        # nowait single inside a loop: encounters may overlap, so the
        # chain is not serialized and the candidate must survive
        src = PROG + """
var g;
func helper() {
    g = g + 1;
    return 0;
}
func main() {
    omp parallel num_threads(2) {
        for (var k = 0; k < 2; k = k + 1) {
            omp single nowait {
                helper();
            }
        }
    }
}"""
        prog, (a, b), contexts, cg = resolved_infos(src, "g")
        assert "helper" in contexts and not contexts["helper"].serialized
        assert may_happen_in_parallel(a, b, {"helper"}, contexts=contexts)
        assert any(c.var == "g" for c in find_races(prog).candidates)

    def test_mutual_recursion_stays_conservative(self):
        src = PROG + """
var g;
func ping(n) {
    if (n > 0) {
        pong(n - 1);
    }
    g = g + 1;
    return 0;
}
func pong(n) {
    if (n > 0) {
        ping(n - 1);
    }
    return 0;
}
func main() {
    omp parallel num_threads(2) {
        omp master {
            ping(2);
        }
    }
}"""
        prog, (a, b), contexts, cg = resolved_infos(src, "g")
        assert {"ping", "pong"} <= cg.recursive
        # recursive chains are never context-resolved, even under master
        assert "ping" not in contexts and "pong" not in contexts
        assert may_happen_in_parallel(a, b, {"ping", "pong"}, contexts=contexts)
        assert any(c.var == "g" for c in find_races(prog).candidates)

    def test_fork_join_sequential_helper_vs_parallel_code(self):
        src = PROG + """
var g;
func helper() {
    g = g + 2;
    return 0;
}
func main() {
    omp parallel num_threads(2) {
        omp critical {
            g = g + 1;
        }
    }
    helper();
}"""
        prog, infos, contexts, cg = resolved_infos(src, "g")
        helper_write = infos[0]  # helper body precedes main in source
        par_write = infos[2]
        assert not helper_write.regions and par_write.regions
        assert "helper" not in cg.reached_from_parallel
        # legacy: regionless -> context unknown -> maybe
        assert may_happen_in_parallel(helper_write, par_write)
        # with contexts computed, sequential fork-join code cannot
        # overlap the parallel region (helper is not spawn-reachable)
        assert not may_happen_in_parallel(
            helper_write, par_write, contexts=contexts
        )
