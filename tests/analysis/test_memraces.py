"""Memory-race detection (the ITC model's core) tests."""

import pytest

from helpers import run_main

from repro.analysis.dynamic_.memraces import find_memory_races


def races_for(body, proc=0, **analysis_kw):
    result = run_main(body, monitor_memory=True)
    return find_memory_races(result.log, proc, **analysis_kw)


class TestMemRaces:
    def test_unsynchronized_writes_race(self):
        races = races_for("""
var x = 0;
omp parallel num_threads(2) { x = x + 1; }
""")
        assert any(r.var == "x" for r in races)

    def test_critical_guard_prevents_race(self):
        races = races_for("""
var x = 0;
omp parallel num_threads(2) { omp critical { x = x + 1; } }
""")
        assert races == []

    def test_atomic_prevents_race(self):
        races = races_for("""
var x = 0;
omp parallel num_threads(2) { omp atomic x = x + 1; }
""")
        assert races == []

    def test_named_critical_invisible_when_ignored(self):
        body = """
var x = 0;
omp parallel num_threads(2) { omp critical (n) { x = x + 1; } }
"""
        assert races_for(body) == []
        quirky = races_for(
            body,
            ignored_locks=lambda name: name != "critical:<anonymous>"
            and name.startswith("critical:"),
        )
        assert any(r.var == "x" for r in quirky)

    def test_race_deduplicated_per_location(self):
        races = races_for("""
var x = 0;
omp parallel num_threads(2) {
    x = x + 1;
    x = x + 2;
    x = x + 3;
}
""")
        assert len([r for r in races if r.var == "x"]) == 1

    def test_disjoint_array_elements_no_race(self):
        races = races_for("""
var a[4];
omp parallel num_threads(2) {
    omp for for (var i = 0; i < 4; i = i + 1) { a[i] = a[i] + 1; }
}
""")
        assert races == []

    def test_same_array_element_races(self):
        races = races_for("""
var a[4];
omp parallel num_threads(2) { a[2] = a[2] + 1; }
""")
        assert any(r.var == "a" for r in races)

    def test_read_read_no_race(self):
        races = races_for("""
var x = 5;
omp parallel num_threads(2) { var y = x + x; compute(1); }
""")
        assert races == []

    def test_private_variables_no_race(self):
        races = races_for("""
var x = 0;
omp parallel num_threads(2) private(x) { x = x + 1; }
""")
        assert races == []

    def test_no_monitoring_no_races(self):
        result = run_main("""
var x = 0;
omp parallel num_threads(2) { x = x + 1; }
""", monitor_memory=False)
        assert find_memory_races(result.log, 0) == []
