"""Function-summary construction: linear forms, rebasing through call
chains, escape bookkeeping (soundness), lock transparency, and the
thread-dependence taint fixpoint."""

from repro.analysis.cfg import build_cfg
from repro.analysis.static_.summaries import (
    MAX_COMPOSE_DEPTH,
    TID_BASE,
    LinForm,
    compute_summaries,
)
from repro.minilang import parse

PROG = "program t;\nvar gdata[16];\n"


def summaries_for(src, with_cfgs=False):
    prog = parse(src)
    cfgs = (
        {fn.name: build_cfg(fn) for fn in prog.functions}
        if with_cfgs
        else None
    )
    return compute_summaries(prog, cfgs=cfgs)


class TestLinForm:
    def test_shift_adds_interval(self):
        form = LinForm("i", 2, 1, 3).shift(10, 20)
        assert (form.base, form.coeff, form.lo, form.hi) == ("i", 2, 11, 23)

    def test_scale_positive(self):
        form = LinForm("i", 1, -1, 2).scale(3)
        assert (form.coeff, form.lo, form.hi) == (3, -3, 6)

    def test_scale_negative_swaps_bounds(self):
        form = LinForm("i", 1, -1, 2).scale(-1)
        assert (form.coeff, form.lo, form.hi) == (-1, -2, 1)
        assert form.lo <= form.hi


class TestOwnAccesses:
    def test_parameterized_subscript(self):
        table = summaries_for(PROG + """
func leaf(i) {
    gdata[i + 1] = 0.0;
    return 0;
}
func main() {
    leaf(1);
}""")
        (acc,) = table.summary_for("leaf").accesses
        assert acc.var == "gdata" and acc.is_write
        assert (acc.form.base, acc.form.coeff) == ("i", 1)
        assert (acc.form.lo, acc.form.hi) == (1, 1)
        assert acc.depth == 0

    def test_nonlinear_subscript_escapes(self):
        table = summaries_for(PROG + """
func leaf(i) {
    gdata[i * i] = 0.0;
    return 0;
}
func main() {
    leaf(1);
}""")
        assert table.summary_for("leaf").accesses == []
        assert table.escaped  # delegated to the dynamic phase, not dropped

    def test_counted_loop_subscript_gets_interval(self):
        table = summaries_for(PROG + """
func leaf(i) {
    for (var k = 0; k < 4; k = k + 1) {
        gdata[i + k] = 0.0;
    }
    return 0;
}
func main() {
    leaf(1);
}""")
        (acc,) = table.summary_for("leaf").accesses
        assert (acc.form.base, acc.form.lo, acc.form.hi) == ("i", 0, 3)

    def test_omp_for_body_access_escapes(self):
        # the callee's own worksharing distributes the access; it is
        # never instantiated through calls, only delegated
        table = summaries_for(PROG + """
func leaf(i) {
    omp for
    for (var k = 0; k < 4; k = k + 1) {
        gdata[i] = k;
    }
    return 0;
}
func main() {
    omp parallel num_threads(2) {
        leaf(1);
    }
}""")
        assert table.summary_for("leaf").accesses == []
        assert table.escaped


class TestComposition:
    def test_rebase_through_sequential_chain(self):
        table = summaries_for(PROG + """
func leaf(i) {
    gdata[i + 1] = 0.0;
    return 0;
}
func mid(t) {
    leaf(2 * t + 1);
    return 0;
}
func main() {
    mid(0);
}""")
        accs = table.summary_for("mid").accesses
        (acc,) = [a for a in accs if a.depth == 1]
        # (2t + 1) substituted for i in i + [1,1]  ->  2t + [2,2]
        assert (acc.form.base, acc.form.coeff) == ("t", 2)
        assert (acc.form.lo, acc.form.hi) == (2, 2)
        assert acc.func == "leaf"  # reporting keeps the lexical home

    def test_tid_argument_becomes_tid_form(self):
        table = summaries_for(PROG + """
func leaf(i) {
    gdata[i] = 0.0;
    return 0;
}
func mid() {
    leaf(omp_get_thread_num());
    return 0;
}
func main() {
    mid();
}""")
        (acc,) = table.summary_for("mid").accesses
        assert acc.form.base == TID_BASE and acc.form.coeff == 1

    def test_unknown_argument_escapes_not_drops(self):
        table = summaries_for(PROG + """
func leaf(i) {
    gdata[i] = 0.0;
    return 0;
}
func mid(t) {
    leaf(t * t);
    return 0;
}
func main() {
    mid(1);
}""")
        assert table.summary_for("mid").accesses == []
        leaf_acc = table.summary_for("leaf").accesses[0]
        assert leaf_acc.nid in table.escaped

    def test_guards_accumulate_along_chain(self):
        table = summaries_for(PROG + """
func leaf(i) {
    gdata[i] = 0.0;
    return 0;
}
func mid(t) {
    omp critical(tally) {
        leaf(t);
    }
    return 0;
}
func main() {
    mid(0);
}""")
        (acc,) = table.summary_for("mid").accesses
        assert acc.guards  # call-site critical joined into the access

    def test_recursive_functions_are_opaque(self):
        table = summaries_for(PROG + """
func f(n) {
    gdata[n] = 0.0;
    if (n > 0) {
        f(n - 1);
    }
    return 0;
}
func main() {
    f(3);
}""")
        assert table.functions["f"].opaque
        assert table.summary_for("f") is None

    def test_compose_depth_is_bounded(self):
        assert MAX_COMPOSE_DEPTH >= 2  # chains in the workloads are 2-3 deep


class TestLockTransparency:
    SRC = PROG + """
func locker() {
    omp_set_lock("m");
    gdata[0] = 1.0;
    omp_unset_lock("m");
    return 0;
}
func wrapper() {
    locker();
    return 0;
}
func pure(i) {
    return i + 1;
}
func main() {
    omp parallel num_threads(2) {
        wrapper();
        pure(1);
    }
}"""

    def test_lock_touching_chain_not_transparent(self):
        table = summaries_for(self.SRC)
        assert "locker" not in table.lock_transparent
        assert "wrapper" not in table.lock_transparent

    def test_lock_free_function_transparent(self):
        table = summaries_for(self.SRC)
        assert "pure" in table.lock_transparent
        assert "main" not in table.lock_transparent


class TestTaintFixpoint:
    SRC = PROG + """
func sink(i) {
    gdata[i] = 0.0;
    return 0;
}
func relay(x) {
    sink(x);
    return 0;
}
func tid_source() {
    return omp_get_thread_num();
}
func launder(y) {
    return y;
}
func clean(z) {
    return z + 1;
}
func main() {
    omp parallel num_threads(2) {
        relay(omp_get_thread_num());
        launder(tid_source());
    }
    clean(5);
}"""

    def test_param_taint_flows_through_chain(self):
        table = summaries_for(self.SRC, with_cfgs=True)
        assert "x" in table.tainted_params["relay"]
        # transitively: relay passes its tainted param down to sink
        assert "i" in table.tainted_params["sink"]
        assert table.tainted_params["clean"] == frozenset()

    def test_return_taint_bottom_up(self):
        table = summaries_for(self.SRC, with_cfgs=True)
        assert "tid_source" in table.ret_tainted
        # launder returns a tainted parameter: tainted return
        assert "launder" in table.ret_tainted
        assert "clean" not in table.ret_tainted
