"""Retry-backoff RNG stream isolation and campaign determinism.

The backoff jitter draws from a third RNG stream so arming retries can
never perturb fault decisions or scheduling — and campaigns stay
bit-identical whether cells run serially or under ``--jobs > 1``.
"""

from repro.campaign import CampaignConfig, run_campaign
from repro.faults import FaultInjector, builtin_plans
from repro.workloads.npb import build_ft_mz


class TestBackoffStreamIsolation:
    def test_backoff_leaves_fault_rng_untouched(self):
        inj = FaultInjector(None, nprocs=2, seed=9)
        fault_state = inj.rng.getstate()
        for attempt in range(5):
            inj.retry_backoff(120.0, 2.0, attempt)
        assert inj.rng.getstate() == fault_state

    def test_backoff_deterministic_per_seed(self):
        a = FaultInjector(None, nprocs=2, seed=3)
        b = FaultInjector(None, nprocs=2, seed=3)
        seq_a = [a.retry_backoff(120.0, 2.0, i) for i in range(4)]
        seq_b = [b.retry_backoff(120.0, 2.0, i) for i in range(4)]
        assert seq_a == seq_b
        c = FaultInjector(None, nprocs=2, seed=4)
        assert [c.retry_backoff(120.0, 2.0, i) for i in range(4)] != seq_a

    def test_backoff_grows_exponentially(self):
        inj = FaultInjector(None, nprocs=2, seed=0)
        first = inj.retry_backoff(120.0, 2.0, 0)
        third = inj.retry_backoff(120.0, 2.0, 2)
        # jitter is bounded, so attempt 2 always beats attempt 0
        assert 0 < first < third

    def test_backoff_exists_without_a_plan(self):
        # retry policies are program state, not fault-plan state: an
        # empty plan must still produce deterministic backoff
        inj = FaultInjector(None, nprocs=2, seed=1)
        assert inj.retry_backoff(50.0, 2.0, 0) > 0


class TestCampaignJobsDeterminism:
    def test_ft_campaign_identical_across_jobs(self):
        program = build_ft_mz(inject=True)
        plans = {name: builtin_plans(2)[name] for name in ("none", "crash")}
        results = []
        for jobs in (1, 2):
            config = CampaignConfig(
                seeds=(0, 1), plans=plans, nprocs=2, num_threads=2,
                jobs=jobs, record_timing=False,
            )
            results.append(run_campaign(program, config))
        serial, parallel = results
        assert not serial.degraded and not parallel.degraded
        assert [o.as_dict() for o in serial.outcomes] == [
            o.as_dict() for o in parallel.outcomes
        ]
        assert serial.report.classes() == parallel.report.classes()
