"""FaultInjector unit tests: decision points answered deterministically."""

from repro.faults import (
    EAGER_RENDEZVOUS,
    MESSAGE_DELAY,
    QUEUE_REORDER,
    RANK_CRASH,
    THREAD_DOWNGRADE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.mpi.constants import (
    MPI_THREAD_FUNNELED,
    MPI_THREAD_MULTIPLE,
    MPI_THREAD_SINGLE,
)


def injector(*specs, nprocs=2, seed=0, name="t"):
    return FaultInjector(FaultPlan(tuple(specs), name=name), nprocs, seed=seed)


class TestDisabled:
    def test_no_plan_means_no_faults(self):
        inj = FaultInjector(None, 2)
        assert not inj.enabled
        assert inj.granted_thread_level(0, MPI_THREAD_MULTIPLE) == (
            MPI_THREAD_MULTIPLE, None,
        )
        assert inj.on_mpi_call(0) is None
        assert not inj.perturb_send(0, 1)
        assert inj.lock_jitter(0) == (0.0, None)
        assert inj.summary()["fired"] == 0


class TestThreadDowngrade:
    def test_downgrades_below_provided(self):
        inj = injector(FaultSpec(THREAD_DOWNGRADE, max_level=MPI_THREAD_FUNNELED))
        level, spec = inj.granted_thread_level(0, MPI_THREAD_MULTIPLE)
        assert level == MPI_THREAD_FUNNELED
        assert spec is not None

    def test_never_upgrades(self):
        inj = injector(FaultSpec(THREAD_DOWNGRADE, max_level=MPI_THREAD_FUNNELED))
        level, spec = inj.granted_thread_level(0, MPI_THREAD_SINGLE)
        assert level == MPI_THREAD_SINGLE
        assert spec is None

    def test_rank_scoping(self):
        inj = injector(
            FaultSpec(THREAD_DOWNGRADE, rank=1, max_level=MPI_THREAD_FUNNELED)
        )
        assert inj.granted_thread_level(0, MPI_THREAD_MULTIPLE)[1] is None
        assert inj.granted_thread_level(1, MPI_THREAD_MULTIPLE)[1] is not None


class TestRankCrash:
    def test_crashes_at_nth_call(self):
        inj = injector(FaultSpec(RANK_CRASH, rank=0, at_call=3))
        assert inj.on_mpi_call(0) is None
        assert inj.on_mpi_call(0) is None
        assert inj.on_mpi_call(0) is not None
        assert inj.crashed(0)

    def test_other_ranks_survive(self):
        inj = injector(FaultSpec(RANK_CRASH, rank=0, at_call=1))
        for _ in range(5):
            assert inj.on_mpi_call(1) is None
        assert not inj.crashed(1)


class TestSendPerturbation:
    def test_message_delay_every_nth_delivery(self):
        inj = injector(FaultSpec(MESSAGE_DELAY, rank=1, delay=100.0, every=2))
        first = inj.perturb_send(0, 1)
        second = inj.perturb_send(0, 1)
        assert first.extra_latency == 0.0
        assert second.extra_latency == 100.0

    def test_delay_keys_on_destination(self):
        inj = injector(FaultSpec(MESSAGE_DELAY, rank=1, delay=100.0, every=1))
        assert inj.perturb_send(0, 0).extra_latency == 0.0
        assert inj.perturb_send(0, 1).extra_latency == 100.0

    def test_rendezvous_flip_after_n_sends(self):
        inj = injector(FaultSpec(EAGER_RENDEZVOUS, rank=0, every=2))
        assert not inj.perturb_send(0, 1).force_sync
        assert not inj.perturb_send(0, 1).force_sync
        assert inj.perturb_send(0, 1).force_sync

    def test_reorder_fires_deterministically(self):
        def fire_pattern(seed):
            inj = injector(FaultSpec(QUEUE_REORDER, every=2), seed=seed)
            return [inj.perturb_send(0, 1).reorder for _ in range(16)]

        assert fire_pattern(5) == fire_pattern(5)
        assert any(fire_pattern(5))

    def test_applied_specs_listed(self):
        inj = injector(
            FaultSpec(MESSAGE_DELAY, delay=10.0, every=1),
            FaultSpec(EAGER_RENDEZVOUS, every=1),
        )
        inj.perturb_send(0, 1)
        perturb = inj.perturb_send(0, 1)
        assert {s.kind for s in perturb.applied} == {
            MESSAGE_DELAY, EAGER_RENDEZVOUS,
        }


class TestSummary:
    def test_summary_counts_by_kind(self):
        inj = injector(FaultSpec(RANK_CRASH, rank=1, at_call=1))
        spec = inj.on_mpi_call(1)
        inj.record(spec, 1, "rank 1 crashed")
        summary = inj.summary()
        assert summary["plan"] == "t"
        assert summary["fired"] == 1
        assert summary["by_kind"] == {RANK_CRASH: 1}
        assert summary["crashed_ranks"] == [1]
