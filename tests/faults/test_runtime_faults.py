"""End-to-end fault injection through the simulator and HOME pipeline."""

import pytest

from helpers import run_src

from repro.errors import StepLimitError, WorkerKillFault
from repro.events import FaultEvent
from repro.faults import (
    DRILL_KINDS,
    EAGER_RENDEZVOUS,
    LOCK_JITTER,
    MESSAGE_DELAY,
    QUEUE_REORDER,
    RANK_CRASH,
    THREAD_DOWNGRADE,
    FaultPlan,
    FaultSpec,
    builtin_plans,
)
from repro.home import Home
from repro.minilang import parse, validate
from repro.mpi.constants import MPI_THREAD_FUNNELED
from repro.workloads.case_studies import case_study_2

PINGPONG = """
program pingpong;
var buf[4];
func main() {
    mpi_init();
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var partner = 1 - rank;
    var i = 0;
    while (i < 4) {
        if (rank == 0) {
            mpi_send(buf, 2, partner, 9, MPI_COMM_WORLD);
            mpi_recv(buf, 2, partner, 9, MPI_COMM_WORLD);
        } else {
            mpi_recv(buf, 2, partner, 9, MPI_COMM_WORLD);
            mpi_send(buf, 2, partner, 9, MPI_COMM_WORLD);
        }
        i = i + 1;
    }
    mpi_finalize();
}
"""

SPIN = """
program spin;
func main() {
    mpi_init();
    var i = 0;
    while (i < 100000) { i = i + 1; }
    mpi_finalize();
}
"""


def run_pingpong(plan=None, **kw):
    return run_src(PINGPONG, nprocs=2, threads=1, fault_plan=plan, **kw)


class TestFaultFreeDeterminism:
    def test_empty_plan_changes_nothing(self):
        base = run_src(PINGPONG, nprocs=2, threads=1, seed=11)
        empty = run_pingpong(FaultPlan(), seed=11)
        assert len(base.log) == len(empty.log)
        assert base.makespan == empty.makespan


class TestRankCrash:
    def test_crash_is_isolated_not_raised(self):
        plan = FaultPlan((FaultSpec(RANK_CRASH, rank=1, at_call=2),), name="c")
        result = run_pingpong(plan)
        # the survivor blocks on the dead rank: recorded, never raised
        assert result.deadlocked
        faults = [e for e in result.log if type(e) is FaultEvent]
        assert any(e.kind == RANK_CRASH and e.proc == 1 for e in faults)
        assert result.stats["faults"]["crashed_ranks"] == [1]
        assert any("injected MPI_Abort" in n for n in result.notes)

    def test_later_calls_on_dead_rank_do_not_fire_again(self):
        plan = FaultPlan((FaultSpec(RANK_CRASH, rank=1, at_call=2),), name="c")
        result = run_pingpong(plan)
        crashes = [
            e for e in result.log
            if type(e) is FaultEvent and e.kind == RANK_CRASH
        ]
        assert len(crashes) == 1


class TestThreadDowngrade:
    def test_downgrade_creates_funneled_violations(self):
        plan = FaultPlan(
            (FaultSpec(THREAD_DOWNGRADE, max_level=MPI_THREAD_FUNNELED),),
            name="d",
        )
        program = case_study_2()
        clean = Home().check(program, nprocs=2, num_threads=2, seed=0)
        faulty = Home().check(
            program, nprocs=2, num_threads=2, seed=0, fault_plan=plan
        )
        # the downgraded library makes strictly more behaviour illegal
        assert len(faulty.violations) >= len(clean.violations)
        assert "InitializationViolation" in faulty.violations.classes()
        faults = [e for e in faulty.execution.log if type(e) is FaultEvent]
        assert {e.proc for e in faults} == {0, 1}

    def test_granted_level_lands_in_trace(self):
        plan = FaultPlan(
            (FaultSpec(THREAD_DOWNGRADE, max_level=MPI_THREAD_FUNNELED),),
            name="d",
        )
        report = Home().check(
            case_study_2(), nprocs=2, num_threads=2, fault_plan=plan
        )
        inits = [
            e for e in report.execution.log.mpi_calls(0)
            if e.op == "mpi_init_thread"
        ]
        assert inits[0].args["provided"] == MPI_THREAD_FUNNELED


class TestMessagePerturbations:
    @pytest.mark.parametrize("kind,kw", [
        (MESSAGE_DELAY, {"delay": 300.0, "every": 1}),
        (QUEUE_REORDER, {"every": 1}),
    ])
    def test_delivery_faults_complete(self, kind, kw):
        plan = FaultPlan((FaultSpec(kind, **kw),), name="m")
        result = run_pingpong(plan, seed=3)
        assert not result.deadlocked
        assert result.completed
        assert any(
            type(e) is FaultEvent and e.kind == kind for e in result.log
        )

    def test_delay_slows_delivery(self):
        base = run_pingpong(seed=3)
        plan = FaultPlan(
            (FaultSpec(MESSAGE_DELAY, delay=500.0, every=1),), name="m"
        )
        slowed = run_pingpong(plan, seed=3)
        assert slowed.makespan > base.makespan

    def test_rendezvous_flip_fires(self):
        plan = FaultPlan((FaultSpec(EAGER_RENDEZVOUS, every=1),), name="r")
        result = run_pingpong(plan, seed=3)
        # the ping-pong protocol tolerates sync sends; the flip must fire
        assert any(
            type(e) is FaultEvent and e.kind == EAGER_RENDEZVOUS
            for e in result.log
        )


class TestLockJitter:
    def test_jitter_perturbs_virtual_time(self):
        body = """
program jit;
func main() {
    mpi_init();
    var x = 0;
    omp parallel num_threads(2) {
        omp critical { x = x + 1; }
    }
    mpi_finalize();
}
"""
        program = parse(body)
        validate(program)
        from repro.runtime import run_program

        base = run_program(program, nprocs=1, num_threads=2, seed=1)
        plan = FaultPlan((FaultSpec(LOCK_JITTER, delay=50.0),), name="j")
        jittered = run_program(
            program, nprocs=1, num_threads=2, seed=1, fault_plan=plan
        )
        assert jittered.makespan > base.makespan
        assert jittered.stats["faults"]["by_kind"] == {LOCK_JITTER: 2}


class TestPartialCapture:
    def test_budget_raises_without_capture(self):
        with pytest.raises(StepLimitError):
            run_src(SPIN, nprocs=1, threads=1, max_steps=2000)

    def test_budget_salvages_partial_trace_with_capture(self):
        result = run_src(
            SPIN, nprocs=1, threads=1, max_steps=2000, capture_partial=True
        )
        assert not result.completed
        assert "infinite loop" in result.failure
        assert len(result.log) > 0


class TestBuiltinPlansRunEverywhere:
    @pytest.mark.parametrize("name", sorted(
        name for name, plan in builtin_plans(2).items()
        if not any(spec.kind in DRILL_KINDS for spec in plan.specs)
    ))
    def test_plan_never_raises_on_pingpong(self, name):
        plan = builtin_plans(2)[name]
        result = run_pingpong(plan or None, seed=5, capture_partial=True)
        assert result is not None  # completed or recorded, never raised

    def test_drill_plan_raises_outside_disposable_workers(self):
        # the worker-kill drill models the host process dying, so it
        # must escape the interpreter (the campaign layer catches it
        # per cell); only real fault kinds are absorbed in-run
        with pytest.raises(WorkerKillFault, match="worker-kill drill"):
            run_pingpong(builtin_plans(2)["killworker"], seed=5,
                         capture_partial=True)
