"""Fault taxonomy / plan tests: validation, serialization, determinism."""

import pytest

from repro.faults import (
    DRILL_KINDS,
    FAULT_KINDS,
    EAGER_RENDEZVOUS,
    LOCK_JITTER,
    MESSAGE_DELAY,
    QUEUE_REORDER,
    RANK_CRASH,
    THREAD_DOWNGRADE,
    FaultPlan,
    FaultSpec,
    builtin_plans,
    random_plan,
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("cosmic-ray")

    @pytest.mark.parametrize("field,value", [("every", 0), ("at_call", 0)])
    def test_bad_cadence_rejected(self, field, value):
        with pytest.raises(ValueError):
            FaultSpec(RANK_CRASH, **{field: value})

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_describe_mentions_kind(self, kind):
        assert kind in FaultSpec(kind).describe()

    def test_round_trip(self):
        spec = FaultSpec(MESSAGE_DELAY, rank=1, delay=42.0, every=3)
        assert FaultSpec.from_dict(spec.as_dict()) == spec

    def test_from_dict_ignores_unknown_keys(self):
        spec = FaultSpec.from_dict(
            {"kind": LOCK_JITTER, "delay": 2.0, "mystery": True}
        )
        assert spec.kind == LOCK_JITTER and spec.delay == 2.0


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert len(FaultPlan()) == 0

    def test_round_trip(self):
        plan = FaultPlan(
            (FaultSpec(RANK_CRASH, rank=1, at_call=3), FaultSpec(QUEUE_REORDER)),
            name="mixed",
        )
        again = FaultPlan.from_dict(plan.as_dict())
        assert again == plan
        assert again.name == "mixed"

    def test_by_kind_and_kinds(self):
        plan = FaultPlan(
            (FaultSpec(RANK_CRASH, rank=0), FaultSpec(THREAD_DOWNGRADE)),
            name="p",
        )
        assert [s.kind for s in plan.by_kind(RANK_CRASH)] == [RANK_CRASH]
        assert plan.kinds() == sorted([RANK_CRASH, THREAD_DOWNGRADE])

    def test_describe_lists_every_spec(self):
        plan = builtin_plans(2)["crash"]
        assert "crash" in plan.describe()
        assert "MPI call #5" in plan.describe()


class TestBuiltinPlans:
    def test_all_kinds_covered(self):
        plans = builtin_plans(4)
        covered = {s.kind for p in plans.values() for s in p.specs}
        # the worker-kill drill ships as a builtin plan but lives in
        # DRILL_KINDS, outside the fuzzing pool
        assert covered == set(FAULT_KINDS) | set(DRILL_KINDS)

    def test_none_plan_is_empty(self):
        assert not builtin_plans(2)["none"]

    def test_crash_victim_is_last_rank(self):
        (spec,) = builtin_plans(8)["crash"].specs
        assert spec.rank == 7


class TestRandomPlan:
    def test_deterministic_for_same_seed(self):
        assert random_plan(17, nprocs=4) == random_plan(17, nprocs=4)

    def test_different_seeds_vary(self):
        plans = {random_plan(s, nprocs=4) for s in range(20)}
        assert len(plans) > 1

    def test_respects_kind_restriction(self):
        plan = random_plan(3, nprocs=2, kinds=[EAGER_RENDEZVOUS], max_faults=1)
        assert {s.kind for s in plan.specs} == {EAGER_RENDEZVOUS}

    def test_crash_always_targets_concrete_rank(self):
        for seed in range(30):
            plan = random_plan(seed, nprocs=3, kinds=[RANK_CRASH])
            for spec in plan.specs:
                assert spec.rank is not None and 0 <= spec.rank < 3
