"""Scale smoke tests: the paper's largest configurations stay healthy."""

import time

import pytest

from repro.home import check_program
from repro.runtime import RunConfig, run_program
from repro.workloads.npb import build_bt_mz, build_lu_mz


class TestScale:
    def test_lu_at_64_processes(self):
        t0 = time.perf_counter()
        result = run_program(
            build_lu_mz(inject=False),
            RunConfig(nprocs=64, num_threads=2),
        )
        elapsed = time.perf_counter() - t0
        assert not result.deadlocked
        assert result.notes == []
        assert len(result.proc_clocks) == 64
        # the halo ring touches every rank: 2 messages per rank per step
        assert result.stats["messages_sent"] >= 64
        # host-time guard: a 64-rank run must stay interactive
        assert elapsed < 20.0

    def test_home_check_at_16_processes_with_injections(self):
        report = check_program(build_bt_mz(inject=True), nprocs=16)
        assert not report.deadlocked
        # same verdict classes as the 2-process runs
        assert report.violations.count() >= 6

    def test_four_threads_per_process(self):
        result = run_program(
            build_lu_mz(inject=False),
            RunConfig(nprocs=4, num_threads=4),
        )
        # benchmark regions pin num_threads(2); config threads only set
        # the default — the run must still be clean
        assert not result.deadlocked

    def test_event_volume_bounded(self):
        """The event log must not explode quadratically with ranks."""
        small = run_program(build_lu_mz(inject=False),
                            RunConfig(nprocs=4, num_threads=2))
        large = run_program(build_lu_mz(inject=False),
                            RunConfig(nprocs=16, num_threads=2))
        # total work is fixed (strong scaling): events grow at most
        # linearly in ranks (per-rank constant overhead)
        assert len(large.log) < len(small.log) * 8
