"""OpenMP semantics: teams, worksharing, synchronization, data sharing."""

import pytest

from helpers import run_main, run_src

from repro.events import BarrierEvent, LockAcquire, ThreadBegin, ThreadFork, ThreadJoin


def printed(body, globals_="", **kw):
    return run_main(body, globals_, **kw).printed_lines()


class TestParallelRegions:
    def test_team_size_from_num_threads(self):
        out = printed("omp parallel num_threads(3) { print(omp_get_num_threads()); }")
        assert out == ["3", "3", "3"]

    def test_default_team_size_from_config(self):
        out = printed("omp parallel { print(omp_get_thread_num()); }", threads=4)
        assert sorted(out) == ["0", "1", "2", "3"]

    def test_omp_set_num_threads(self):
        out = printed("omp_set_num_threads(3);\nomp parallel { print(1); }", threads=2)
        assert out == ["1", "1", "1"]

    def test_single_thread_team(self):
        out = printed("omp parallel num_threads(1) { print(omp_get_thread_num()); }")
        assert out == ["0"]

    def test_fork_join_events(self):
        result = run_main("omp parallel num_threads(2) { compute(1); }")
        assert len(result.log.of_type(ThreadFork)) == 1
        assert len(result.log.of_type(ThreadJoin)) == 1
        assert len(result.log.of_type(ThreadBegin)) == 1  # one worker

    def test_nested_parallel(self):
        body = """
omp parallel num_threads(2) {
    omp parallel num_threads(2) {
        compute(1);
    }
}
"""
        result = run_main(body)
        # 1 outer fork + 2 inner forks (one per outer member)
        assert len(result.log.of_type(ThreadFork)) == 3

    def test_sequential_regions_reuse_nothing(self):
        body = """
var total = 0;
omp parallel num_threads(2) { omp atomic total = total + 1; }
omp parallel num_threads(2) { omp atomic total = total + 1; }
print(total);
"""
        assert printed(body) == ["4"]

    def test_return_inside_parallel_aborts(self):
        src = """
program p;
func f() {
    omp parallel num_threads(2) { return 1; }
    return 0;
}
func main() { f(); }
"""
        result = run_src(src)
        assert any("return inside omp parallel" in n for n in result.notes)


class TestDataSharing:
    def test_shared_by_default(self):
        body = """
var x = 0;
omp parallel num_threads(2) {
    omp critical { x = x + 1; }
}
print(x);
"""
        assert printed(body) == ["2"]

    def test_private_clause_gives_fresh_cells(self):
        body = """
var x = 99;
omp parallel num_threads(2) private(x) {
    x = omp_get_thread_num();
}
print(x);
"""
        assert printed(body) == ["99"]

    def test_firstprivate_copies_value(self):
        body = """
var x = 7;
omp parallel num_threads(2) firstprivate(x) {
    print(x);
    x = 0;
}
print(x);
"""
        assert printed(body) == ["7", "7", "7"]

    def test_region_locals_are_private(self):
        body = """
omp parallel num_threads(2) {
    var mine = omp_get_thread_num();
    compute(1);
    print(mine);
}
"""
        assert sorted(printed(body)) == ["0", "1"]


class TestOmpFor:
    def test_static_covers_all_iterations_once(self):
        body = """
var hits[8];
omp parallel num_threads(2) {
    omp for for (var i = 0; i < 8; i = i + 1) {
        hits[i] = hits[i] + 1;
    }
}
var total = 0;
for (var k = 0; k < 8; k = k + 1) { total = total + hits[k]; }
print(total);
"""
        assert printed(body) == ["8.0"]

    def test_dynamic_covers_all_iterations_once(self):
        body = """
var hits[9];
omp parallel num_threads(3) {
    omp for schedule(dynamic) for (var i = 0; i < 9; i = i + 1) {
        hits[i] = hits[i] + 1;
    }
}
var total = 0;
for (var k = 0; k < 9; k = k + 1) { total = total + hits[k]; }
print(total);
"""
        assert printed(body) == ["9.0"]

    def test_static_chunked(self):
        body = """
var sum = 0;
omp parallel num_threads(2) {
    omp for schedule(static, 2) for (var i = 0; i < 6; i = i + 1) {
        omp critical { sum = sum + i; }
    }
}
print(sum);
"""
        assert printed(body) == ["15"]

    def test_loop_variable_private_per_thread(self):
        body = """
var seen = 0;
omp parallel num_threads(2) {
    omp for for (var i = 0; i < 4; i = i + 1) {
        compute(1);
    }
}
print(seen);
"""
        assert printed(body) == ["0"]

    def test_downward_loop(self):
        body = """
var sum = 0;
omp parallel num_threads(2) {
    omp for for (var i = 5; i > 0; i = i - 1) {
        omp critical { sum = sum + i; }
    }
}
print(sum);
"""
        assert printed(body) == ["15"]

    def test_le_bound(self):
        body = """
var sum = 0;
omp parallel num_threads(2) {
    omp for for (var i = 1; i <= 3; i = i + 1) {
        omp critical { sum = sum + i; }
    }
}
print(sum);
"""
        assert printed(body) == ["6"]

    def test_empty_iteration_space(self):
        body = """
omp parallel num_threads(2) {
    omp for for (var i = 5; i < 5; i = i + 1) { print("never"); }
}
print("done");
"""
        assert printed(body) == ["done"]

    def test_implicit_barrier_after_for(self):
        # Without nowait, no thread passes the loop before all finish:
        # the flag set after the loop must observe every iteration done.
        body = """
var done = 0;
var late = 0;
omp parallel num_threads(2) {
    omp for for (var i = 0; i < 4; i = i + 1) {
        if (omp_get_thread_num() == 1) { compute(50); }
        omp critical { done = done + 1; }
    }
    if (done != 4) { omp critical { late = late + 1; } }
}
print(late);
"""
        assert printed(body) == ["0"]

    def test_serial_omp_for_outside_team(self):
        body = """
var sum = 0;
omp parallel num_threads(1) {
    omp for for (var i = 0; i < 4; i = i + 1) { sum = sum + i; }
}
print(sum);
"""
        assert printed(body) == ["6"]


class TestSectionsSingleMaster:
    def test_sections_each_run_once(self):
        body = """
var a = 0;
var b = 0;
omp parallel num_threads(2) {
    omp sections {
        omp section { omp atomic a = a + 1; }
        omp section { omp atomic b = b + 1; }
    }
}
print(a, b);
"""
        assert printed(body) == ["1 1"]

    def test_more_sections_than_threads(self):
        body = """
var n = 0;
omp parallel num_threads(2) {
    omp sections {
        omp section { omp atomic n = n + 1; }
        omp section { omp atomic n = n + 1; }
        omp section { omp atomic n = n + 1; }
        omp section { omp atomic n = n + 1; }
    }
}
print(n);
"""
        assert printed(body) == ["4"]

    def test_single_executes_once(self):
        body = """
var n = 0;
omp parallel num_threads(4) {
    omp single { n = n + 1; }
}
print(n);
"""
        assert printed(body) == ["1"]

    def test_single_in_loop_executes_once_per_visit(self):
        body = """
var n = 0;
omp parallel num_threads(2) {
    omp for for (var r = 0; r < 1; r = r + 1) { compute(1); }
    omp single { n = n + 1; }
    omp barrier;
    omp single { n = n + 1; }
}
print(n);
"""
        assert printed(body) == ["2"]

    def test_master_only_thread_zero(self):
        body = """
omp parallel num_threads(3) {
    omp master { print(omp_get_thread_num()); }
}
"""
        assert printed(body) == ["0"]


class TestSynchronization:
    def test_critical_mutual_exclusion_no_lost_updates(self):
        body = """
var n = 0;
omp parallel num_threads(4) {
    omp for for (var i = 0; i < 20; i = i + 1) {
        omp critical { n = n + 1; }
    }
}
print(n);
"""
        for seed in (0, 1, 2):
            assert printed(body, seed=seed) == ["20"]

    def test_named_criticals_are_distinct_locks(self):
        result = run_main(
            "omp parallel num_threads(2) {\n"
            "omp critical (a) { compute(1); }\n"
            "omp critical (b) { compute(1); }\n"
            "}"
        )
        locks = {e.lock for e in result.log.of_type(LockAcquire)}
        assert "critical:a" in locks and "critical:b" in locks

    def test_atomic_updates_not_lost(self):
        body = """
var n = 0;
omp parallel num_threads(4) {
    omp for for (var i = 0; i < 12; i = i + 1) {
        omp atomic n = n + 1;
    }
}
print(n);
"""
        assert printed(body, seed=5) == ["12"]

    def test_barrier_orders_phases(self):
        body = """
var phase1 = 0;
var bad = 0;
omp parallel num_threads(3) {
    omp critical { phase1 = phase1 + 1; }
    omp barrier;
    if (phase1 != 3) { omp critical { bad = bad + 1; } }
}
print(bad);
"""
        for seed in (0, 3, 9):
            assert printed(body, seed=seed) == ["0"]

    def test_barrier_emits_events(self):
        result = run_main("omp parallel num_threads(2) { omp barrier; }")
        barriers = result.log.of_type(BarrierEvent)
        assert len(barriers) == 2  # one per team member

    def test_user_locks(self):
        body = """
var n = 0;
omp_init_lock("l");
omp parallel num_threads(3) {
    omp_set_lock("l");
    n = n + 1;
    omp_unset_lock("l");
}
print(n);
"""
        assert printed(body) == ["3"]

    def test_test_lock_returns_bool(self):
        body = """
omp_init_lock("l");
omp_set_lock("l");
print(omp_test_lock("l"));
omp_unset_lock("l");
print(omp_test_lock("l"));
"""
        assert printed(body) == ["False", "True"]

    def test_barrier_advances_clock_to_slowest(self):
        body = """
omp parallel num_threads(2) {
    if (omp_get_thread_num() == 1) { compute(100); }
    omp barrier;
}
"""
        result = run_main(body)
        assert result.makespan >= 1000


class TestRepeatedRegions:
    def test_single_across_sequential_regions_runs_once_each(self):
        """Regression: the master's worksharing visit counters must reset
        per region, or step N's single desynchronizes against workers."""
        body = """
var n = 0;
for (var step = 0; step < 3; step = step + 1) {
    omp parallel num_threads(2) {
        omp single { n = n + 1; }
    }
}
print(n);
"""
        for seed in (0, 1, 4):
            assert printed(body, seed=seed) == ["3"]

    def test_dynamic_for_across_sequential_regions(self):
        body = """
var n = 0;
for (var step = 0; step < 2; step = step + 1) {
    omp parallel num_threads(2) {
        omp for schedule(dynamic) for (var i = 0; i < 6; i = i + 1) {
            omp atomic n = n + 1;
        }
    }
}
print(n);
"""
        assert printed(body) == ["12"]

    def test_sections_across_sequential_regions(self):
        body = """
var n = 0;
for (var step = 0; step < 2; step = step + 1) {
    omp parallel num_threads(2) {
        omp sections {
            omp section { omp atomic n = n + 1; }
            omp section { omp atomic n = n + 1; }
        }
    }
}
print(n);
"""
        assert printed(body) == ["4"]
