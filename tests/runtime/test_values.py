"""Cells, arrays, scopes, operator semantics."""

import numpy as np
import pytest

from repro.errors import SimAbort
from repro.runtime.values import ArrayValue, BinOps, Cell, Scope, as_int, truthy


class TestCell:
    def test_unique_ids(self):
        assert Cell("a").cid != Cell("a").cid

    def test_default_not_shared(self):
        assert not Cell("a").shared


class TestArrayValue:
    def test_zero_initialized(self):
        arr = ArrayValue(4)
        assert arr.get(0) == 0.0 and len(arr) == 4

    def test_set_get(self):
        arr = ArrayValue(3)
        arr.set(1, 2.5)
        assert arr.get(1) == 2.5

    def test_out_of_bounds_read(self):
        with pytest.raises(SimAbort, match="out of bounds"):
            ArrayValue(2).get(2)

    def test_negative_index_rejected(self):
        with pytest.raises(SimAbort):
            ArrayValue(2).get(-1)

    def test_non_integer_index_rejected(self):
        with pytest.raises(SimAbort):
            ArrayValue(2).get(1.5)

    def test_negative_size_rejected(self):
        with pytest.raises(SimAbort):
            ArrayValue(-1)

    def test_snapshot_is_a_copy(self):
        arr = ArrayValue(2)
        snap = arr.snapshot()
        arr.set(0, 9)
        assert snap[0] == 0.0

    def test_load_truncates_to_capacity(self):
        arr = ArrayValue(2)
        arr.load(np.asarray([1.0, 2.0, 3.0]))
        assert list(arr.data) == [1.0, 2.0]

    def test_load_respects_count(self):
        arr = ArrayValue(4)
        arr.load(np.asarray([1.0, 2.0, 3.0]), count=2)
        assert list(arr.data) == [1.0, 2.0, 0.0, 0.0]


class TestScope:
    def test_declare_and_lookup(self):
        scope = Scope()
        cell = scope.declare("x", 7)
        assert scope.lookup("x") is cell

    def test_parent_chain_lookup(self):
        outer = Scope()
        outer.declare("x", 1)
        inner = Scope(parent=outer)
        assert inner.lookup("x").value == 1

    def test_shadowing(self):
        outer = Scope()
        outer.declare("x", 1)
        inner = Scope(parent=outer)
        inner.declare("x", 2)
        assert inner.lookup("x").value == 2
        assert outer.lookup("x").value == 1

    def test_undefined_raises(self):
        with pytest.raises(SimAbort, match="undefined variable"):
            Scope().lookup("ghost")

    def test_try_lookup_returns_none(self):
        assert Scope().try_lookup("ghost") is None

    def test_bind_existing_cell(self):
        outer = Scope()
        cell = outer.declare("x", 5)
        inner = Scope()
        inner.bind("alias", cell)
        assert inner.lookup("alias") is cell

    def test_visible_cells_shadowing(self):
        outer = Scope()
        outer.declare("x", 1)
        outer.declare("y", 2)
        inner = Scope(parent=outer)
        shadow = inner.declare("x", 3)
        cells = {c.name: c for c in inner.visible_cells()}
        assert cells["x"] is shadow
        assert cells["y"].value == 2


class TestTruthyAndCoercion:
    def test_truthy_numbers(self):
        assert truthy(1) and truthy(-2) and truthy(0.5)
        assert not truthy(0) and not truthy(0.0)

    def test_truthy_bool(self):
        assert truthy(True) and not truthy(False)

    def test_truthy_rejects_nonsense(self):
        with pytest.raises(SimAbort):
            truthy(object())

    def test_as_int_accepts_integral_float(self):
        assert as_int(3.0) == 3

    def test_as_int_rejects_fractional(self):
        with pytest.raises(SimAbort):
            as_int(3.5)

    def test_as_int_bool(self):
        assert as_int(True) == 1


class TestBinOps:
    def test_arithmetic(self):
        assert BinOps.apply("+", 2, 3) == 5
        assert BinOps.apply("*", 2, 3) == 6
        assert BinOps.apply("-", 2, 3) == -1

    def test_c_style_integer_division_truncates_toward_zero(self):
        assert BinOps.apply("/", 7, 2) == 3
        assert BinOps.apply("/", -7, 2) == -3
        assert BinOps.apply("/", 7, -2) == -3

    def test_float_division(self):
        assert BinOps.apply("/", 7.0, 2) == 3.5

    def test_division_by_zero(self):
        with pytest.raises(SimAbort, match="division by zero"):
            BinOps.apply("/", 1, 0)

    def test_c_style_modulo_sign(self):
        assert BinOps.apply("%", 7, 3) == 1
        assert BinOps.apply("%", -7, 3) == -1

    def test_modulo_by_zero(self):
        with pytest.raises(SimAbort):
            BinOps.apply("%", 1, 0)

    def test_modulo_requires_ints(self):
        with pytest.raises(SimAbort):
            BinOps.apply("%", 1.5, 2)

    def test_comparisons(self):
        assert BinOps.apply("<", 1, 2)
        assert BinOps.apply(">=", 2, 2)
        assert BinOps.apply("!=", 1, 2)

    def test_logical(self):
        assert BinOps.apply("&&", 1, 1)
        assert not BinOps.apply("&&", 1, 0)
        assert BinOps.apply("||", 0, 1)

    def test_unary(self):
        assert BinOps.apply_unary("-", 5) == -5
        assert BinOps.apply_unary("!", 0) is True

    def test_unknown_operator(self):
        with pytest.raises(SimAbort):
            BinOps.apply("**", 2, 3)
