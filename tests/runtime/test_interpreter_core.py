"""Interpreter core semantics: expressions, control flow, functions, arrays."""

import pytest

from helpers import run_main, run_src

from repro.errors import ReproError


def printed(body, globals_="", **kw):
    return run_main(body, globals_, **kw).printed_lines()


class TestExpressions:
    def test_arithmetic(self):
        assert printed("print(2 + 3 * 4);") == ["14"]

    def test_integer_division(self):
        assert printed("print(7 / 2, -7 / 2);") == ["3 -3"]

    def test_float_arithmetic(self):
        assert printed("print(1.5 + 2.5);") == ["4.0"]

    def test_comparison_chain(self):
        assert printed("print(1 < 2, 2 <= 2, 3 > 4);") == ["True True False"]

    def test_short_circuit_and_skips_rhs(self):
        # Division by zero on the right must not execute.
        assert printed("var x = 0;\nif (x != 0 && 10 / x > 1) { print(1); }\nprint(2);") == ["2"]

    def test_short_circuit_or(self):
        assert printed("var x = 0;\nif (x == 0 || 10 / x > 1) { print(1); }") == ["1"]

    def test_unary_ops(self):
        assert printed("print(-5, !0, !3);") == ["-5 True False"]

    def test_string_values(self):
        assert printed('print("a", "b");') == ["a b"]


class TestVariablesAndScope:
    def test_var_decl_default_zero(self):
        assert printed("var x;\nprint(x);") == ["0"]

    def test_assignment_updates(self):
        assert printed("var x = 1;\nx = x + 41;\nprint(x);") == ["42"]

    def test_block_scope_shadowing(self):
        body = "var x = 1;\n{ var x = 2; print(x); }\nprint(x);"
        assert printed(body) == ["2", "1"]

    def test_globals_visible_in_functions(self):
        src = """
program g;
var counter = 10;
func bump() { counter = counter + 1; return counter; }
func main() { print(bump()); print(counter); }
"""
        assert run_src(src).printed_lines() == ["11", "11"]

    def test_undefined_variable_aborts(self):
        result = run_main("print(ghost);")
        assert any("undefined variable" in n for n in result.notes)


class TestControlFlow:
    def test_if_else(self):
        assert printed("if (1 < 2) { print(1); } else { print(2); }") == ["1"]

    def test_else_if_chain(self):
        body = """
var x = 2;
if (x == 1) { print("one"); }
else if (x == 2) { print("two"); }
else { print("other"); }
"""
        assert printed(body) == ["two"]

    def test_while_loop(self):
        assert printed("var i = 0;\nwhile (i < 3) { i = i + 1; }\nprint(i);") == ["3"]

    def test_for_loop_sum(self):
        body = "var s = 0;\nfor (var i = 1; i <= 4; i = i + 1) { s = s + i; }\nprint(s);"
        assert printed(body) == ["10"]

    def test_for_without_step(self):
        body = "var i = 0;\nfor (; i < 2;) { i = i + 1; }\nprint(i);"
        assert printed(body) == ["2"]

    def test_loop_variable_scoped_to_loop(self):
        result = run_main("for (var i = 0; i < 2; i = i + 1) { }\nprint(i);")
        assert any("undefined variable" in n for n in result.notes)

    def test_nested_loops(self):
        body = """
var c = 0;
for (var i = 0; i < 3; i = i + 1) {
    for (var j = 0; j < 3; j = j + 1) { c = c + 1; }
}
print(c);
"""
        assert printed(body) == ["9"]


class TestFunctions:
    def test_return_value(self):
        src = "program f;\nfunc double(x) { return x * 2; }\nfunc main() { print(double(21)); }"
        assert run_src(src).printed_lines() == ["42"]

    def test_function_without_return_yields_zero(self):
        src = "program f;\nfunc noop() { }\nfunc main() { print(noop()); }"
        assert run_src(src).printed_lines() == ["0"]

    def test_recursion(self):
        src = """
program f;
func fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() { print(fib(10)); }
"""
        assert run_src(src).printed_lines() == ["55"]

    def test_early_return_from_loop(self):
        src = """
program f;
func find(limit) {
    for (var i = 0; i < limit; i = i + 1) {
        if (i == 3) { return i; }
    }
    return -1;
}
func main() { print(find(10), find(2)); }
"""
        assert run_src(src).printed_lines() == ["3 -1"]

    def test_wrong_arity_aborts(self):
        src = "program f;\nfunc g(a) { return a; }\nfunc main() { g(); }"
        result = run_src(src)
        assert any("expects 1 argument" in n for n in result.notes)

    def test_call_depth_guard(self):
        src = "program f;\nfunc loop() { return loop(); }\nfunc main() { loop(); }"
        result = run_src(src)
        assert any("call depth exceeded" in n for n in result.notes)

    def test_unknown_function_aborts(self):
        result = run_main("mystery(1);")
        assert any("unknown function" in n for n in result.notes)

    def test_arrays_passed_by_reference(self):
        src = """
program f;
func fill(arr) { arr[0] = 99; return 0; }
func main() { var a[2]; fill(a); print(a[0]); }
"""
        assert run_src(src).printed_lines() == ["99.0"]


class TestArrays:
    def test_array_element_roundtrip(self):
        assert printed("var a[3];\na[1] = 5;\nprint(a[1]);") == ["5.0"]

    def test_array_index_expression(self):
        assert printed("var a[4];\nvar i = 1;\na[i + 2] = 7;\nprint(a[3]);") == ["7.0"]

    def test_out_of_bounds_aborts(self):
        result = run_main("var a[2];\na[5] = 1;")
        assert any("out of bounds" in n for n in result.notes)

    def test_array_size_builtin(self):
        assert printed("var a[6];\nprint(array_size(a));") == ["6"]


class TestBuiltinsAndMisc:
    def test_compute_advances_clock(self):
        quiet = run_main("print(1);")
        busy = run_main("compute(100);\nprint(1);")
        assert busy.makespan > quiet.makespan + 900

    def test_min_max_abs(self):
        assert printed("print(min(3, 1), max(3, 1), abs(-4));") == ["1 3 4"]

    def test_assert_pass(self):
        result = run_main("assert(1 < 2);\nprint(1);")
        assert result.printed_lines() == ["1"]
        assert not result.notes

    def test_assert_failure_aborts(self):
        result = run_main("assert(1 > 2);\nprint(1);")
        assert result.printed_lines() == []
        assert any("assertion failed" in n for n in result.notes)

    def test_outputs_record_rank_and_thread(self):
        result = run_main("print(7);", nprocs=2)
        assert {(p, t) for (p, t, _) in result.outputs} == {(0, 0), (1, 0)}

    def test_stats_populated(self):
        result = run_main("compute(1);")
        assert result.stats["scheduler_steps"] > 0
        assert result.stats["events"] == len(result.log)
