"""``nowait`` semantics and the races it enables.

Dropping the implicit end barrier is a real-world OpenMP hazard; these
tests pin both the runtime behaviour (threads proceed early) and the
analysis behaviour (the missing barrier removes the happens-before
edge, so the detectors see the race)."""

import pytest

from helpers import run_main

from repro.analysis.dynamic_.memraces import find_memory_races
from repro.home import check_program
from repro.minilang import parse
from repro.violations import CONCURRENT_RECV


def printed(body, **kw):
    return run_main(body, **kw).printed_lines()


class TestRuntimeBehaviour:
    def test_nowait_lets_fast_thread_run_ahead(self):
        body = """
var ahead = 0;
var done = 0;
omp parallel num_threads(2) {
    omp for nowait for (var i = 0; i < 2; i = i + 1) {
        if (omp_get_thread_num() == 1) { compute(100); }
        omp critical { done = done + 1; }
    }
    if (done < 2) { omp critical { ahead = ahead + 1; } }
}
print(ahead > 0);
"""
        assert printed(body) == ["True"]

    def test_with_barrier_no_thread_runs_ahead(self):
        body = """
var ahead = 0;
var done = 0;
omp parallel num_threads(2) {
    omp for for (var i = 0; i < 2; i = i + 1) {
        if (omp_get_thread_num() == 1) { compute(100); }
        omp critical { done = done + 1; }
    }
    if (done < 2) { omp critical { ahead = ahead + 1; } }
}
print(ahead);
"""
        assert printed(body) == ["0"]

    def test_single_nowait(self):
        body = """
var n = 0;
omp parallel num_threads(3) {
    omp single nowait { compute(100); n = 1; }
    compute(1);
}
print(n);
"""
        assert printed(body) == ["1"]


class TestAnalysisConsequences:
    def test_nowait_removes_hb_edge_memory_race_found(self):
        body = """
var x = 0;
omp parallel num_threads(2) {
    omp for nowait for (var i = 0; i < 2; i = i + 1) {
        compute(1);
    }
    if (omp_get_thread_num() == 0) { x = 1; }
    if (omp_get_thread_num() == 1) { x = 2; }
}
"""
        result = run_main(body, monitor_memory=True)
        assert any(r.var == "x" for r in find_memory_races(result.log, 0))

    def test_barrier_between_phases_no_race(self):
        body = """
var x = 0;
omp parallel num_threads(2) {
    if (omp_get_thread_num() == 0) { x = 1; }
    omp barrier;
    if (omp_get_thread_num() == 1) { x = 2; }
}
"""
        result = run_main(body, monitor_memory=True)
        assert find_memory_races(result.log, 0) == []

    def test_nowait_enables_concurrent_recv_violation(self):
        """A receive 'phased' by an omp for is only safe because of the
        implicit barrier; with nowait the two phases overlap and HOME
        reports the racing envelopes."""
        src_template = """
program nw;
var buf[2];
func main() {{
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var partner = 1 - rank;
    mpi_send(buf, 1, partner, 7, MPI_COMM_WORLD);
    mpi_send(buf, 1, partner, 7, MPI_COMM_WORLD);
    omp parallel num_threads(2) {{
        omp for {nowait} for (var i = 0; i < 2; i = i + 1) {{
            compute(2);
        }}
        if (omp_get_thread_num() == 0) {{
            mpi_recv(buf, 1, partner, 7, MPI_COMM_WORLD);
        }}
        omp barrier;
        if (omp_get_thread_num() == 1) {{
            mpi_recv(buf, 1, partner, 7, MPI_COMM_WORLD);
        }}
    }}
    mpi_finalize();
}}
"""
        # with the barrier-separated phases the two receives are ordered
        safe = check_program(parse(src_template.format(nowait="")), nprocs=2)
        assert CONCURRENT_RECV not in safe.violations.classes()
