"""Property-based engine equivalence: random terminating programs.

Hypothesis generates small mini-language programs from a terminating
grammar (loops only over literal bounds, recursion-free calls) plus a
random seed and thread count, and both engines must produce the same
serialized trace byte for byte.  This sweeps construct *combinations*
the hand-written equivalence cases cannot enumerate.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from runtime.test_engine_equivalence import assert_src_equivalent

# -- expression grammar (always defined: only declared names, no division) --

_VARS = ("a", "b", "c")

_atoms = st.one_of(
    st.integers(min_value=0, max_value=9).map(str),
    st.sampled_from(_VARS),
)


def _binop(children):
    return st.builds(
        lambda l, op, r: f"({l} {op} {r})",
        children,
        st.sampled_from(["+", "-", "*", "<", "==", "%"]),
        children,
    )


_exprs = st.recursive(_atoms, _binop, max_leaves=6).map(
    # a % expression may divide by zero; force a safe modulus
    lambda e: e.replace("% 0", "% 7")
)

# -- statement grammar ------------------------------------------------------


def _assign(expr):
    return st.builds(lambda v, e: f"{v} = {e};", st.sampled_from(_VARS), expr)


def _print(expr):
    return st.builds(lambda e: f"print({e});", expr)


def _compute():
    return st.builds(
        lambda n: f"compute({n});", st.integers(min_value=0, max_value=3)
    )


def _if(stmts, expr):
    return st.builds(
        lambda cond, then, els: (
            f"if ({cond}) {{ {then} }} else {{ {els} }}"
        ),
        expr,
        stmts,
        stmts,
    )


def _for(stmts):
    return st.builds(
        lambda bound, body: (
            f"for (var i = 0; i < {bound}; i = i + 1) {{ {body} }}"
        ),
        st.integers(min_value=0, max_value=4),
        stmts,
    )


def _critical(stmts):
    return st.builds(lambda body: f"omp critical {{ {body} }}", stmts)


def _atomic():
    return st.builds(
        lambda v, n: f"omp atomic {v} = {v} + {n};",
        st.sampled_from(_VARS),
        st.integers(min_value=1, max_value=3),
    )


_stmt_lists = st.recursive(
    st.lists(
        st.one_of(_assign(_exprs), _print(_exprs), _compute(), _atomic()),
        min_size=1,
        max_size=3,
    ).map(" ".join),
    lambda stmts: st.lists(
        st.one_of(
            _assign(_exprs),
            _print(_exprs),
            _compute(),
            _atomic(),
            _if(stmts, _exprs),
            _for(stmts),
            _critical(stmts),
        ),
        min_size=1,
        max_size=3,
    ).map(" ".join),
    max_leaves=8,
)


@st.composite
def programs(draw):
    decls = " ".join(f"var {v} = {draw(st.integers(0, 5))};" for v in _VARS)
    body = draw(_stmt_lists)
    parallel = draw(st.booleans())
    if parallel:
        body = f"omp parallel num_threads(2) {{ {body} }}"
    return f"""
program fuzz;
{decls}
func main() {{
    {body}
}}
"""


class TestEnginePropertyEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        source=programs(),
        seed=st.integers(min_value=0, max_value=31),
        threads=st.integers(min_value=1, max_value=3),
    )
    def test_random_programs_byte_identical(self, source, seed, threads):
        assert_src_equivalent(
            source, nprocs=1, num_threads=threads, seed=seed
        )
