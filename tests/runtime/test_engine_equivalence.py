"""Byte-identity between the two execution engines.

The bytecode VM's contract is not "similar results" — it is
*byte-identical traces*: the same events in the same order with the
same payloads, the same virtual clocks, the same RNG consumption, for
every workload, fault plan and monitoring configuration.  These tests
enforce that contract by running each program twice from identical
initial state (cell/node id counters reset, compile cache cleared) and
comparing the fully serialized traces plus every observable result
field.
"""

from __future__ import annotations

import io
import itertools

import pytest

from helpers import wrap_main

from repro.errors import WorkerKillFault
from repro.events.serialize import dump_log
from repro.faults.plan import builtin_plans
from repro.minilang import ast_nodes, parse, validate
from repro.runtime import RunConfig, make_interpreter, reset_sim_counters
from repro.runtime.bytecode.compiler import clear_compile_cache
from repro.runtime.bytecode.vm import BytecodeInterpreter
from repro.runtime.interpreter import Interpreter
from repro.workloads.npb import BENCHMARKS

# ---------------------------------------------------------------------------
# harness


def _fresh_program(build):
    """Build a program from pristine global state.

    Cell ids, AST node ids and MPI message ids are process-global
    counters; resetting them (and the compile cache keyed on program
    identity) before each build makes the two engine runs start from
    bit-identical worlds.
    """
    ast_nodes._NODE_COUNTER = itertools.count(1)
    reset_sim_counters()
    clear_compile_cache()
    return build()


def _run_engine(engine, build, **cfg):
    program = _fresh_program(build)
    config = RunConfig(engine=engine, **cfg)
    interp = (
        BytecodeInterpreter(program, config)
        if engine == "bytecode"
        else Interpreter(program, config)
    )
    result = interp.run()
    buf = io.StringIO()
    dump_log(result.log, buf)
    return result, buf.getvalue()


def assert_equivalent(build, **cfg):
    """Run *build()* under both engines and require byte-identity."""
    ast_result, ast_trace = _run_engine("ast", build, **cfg)
    vm_result, vm_trace = _run_engine("bytecode", build, **cfg)
    assert ast_trace == vm_trace, "serialized traces differ between engines"
    assert ast_result.outputs == vm_result.outputs
    assert ast_result.notes == vm_result.notes
    assert ast_result.makespan == vm_result.makespan
    assert ast_result.proc_clocks == vm_result.proc_clocks
    assert ast_result.stats == vm_result.stats
    assert ast_result.failure == vm_result.failure
    if ast_result.deadlock is None:
        assert vm_result.deadlock is None
    else:
        assert vm_result.deadlock is not None
        assert ast_result.deadlock.blocked == vm_result.deadlock.blocked
    return ast_result


def src_builder(source):
    def build():
        program = parse(source)
        validate(program)
        return program

    return build


def assert_src_equivalent(source, **cfg):
    return assert_equivalent(src_builder(source), **cfg)


def assert_both_abort(source, match, **cfg):
    """Both engines must abort identically (SimAbort is caught per rank
    and surfaces as an ``aborted: ...`` note, which assert_equivalent
    already compares verbatim — here we additionally pin the message)."""
    result = assert_src_equivalent(source, **cfg)
    assert any(
        "aborted" in note and match in note for note in result.notes
    ), result.notes


# ---------------------------------------------------------------------------
# NPB workloads x fault plans


class TestWorkloads:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    @pytest.mark.parametrize("seed", [0, 7])
    def test_npb_fault_free(self, name, seed):
        assert_equivalent(
            BENCHMARKS[name], nprocs=2, num_threads=2, seed=seed
        )

    @pytest.mark.parametrize(
        "plan_name",
        ["none", "downgrade", "crash", "delay", "reorder", "rendezvous", "jitter"],
    )
    def test_lu_under_fault_plan(self, plan_name):
        plan = builtin_plans(2)[plan_name]
        assert_equivalent(
            BENCHMARKS["lu"], nprocs=2, num_threads=2, seed=3, fault_plan=plan
        )

    def test_killworker_drill_raises_identically(self):
        """WORKER_KILL escapes run() — both engines must die at the
        same point with the same message and identical partial state."""
        plan = builtin_plans(2)["killworker"]
        outcomes = {}
        for engine in ("ast", "bytecode"):
            program = _fresh_program(BENCHMARKS["lu"])
            config = RunConfig(
                engine=engine, nprocs=2, num_threads=2, seed=0, fault_plan=plan
            )
            interp = make_interpreter(program, config)
            with pytest.raises(WorkerKillFault) as exc:
                interp.run()
            buf = io.StringIO()
            dump_log(interp.log, buf)
            outcomes[engine] = (
                str(exc.value),
                interp.scheduler.total_steps,
                buf.getvalue(),
            )
        assert outcomes["ast"] == outcomes["bytecode"]


# ---------------------------------------------------------------------------
# monitoring narrowing


class TestMonitoringNarrowing:
    def test_monitor_everything(self):
        assert_equivalent(
            BENCHMARKS["lu"], nprocs=2, num_threads=2, monitor_memory=True
        )

    def test_monitored_vars_narrowing(self):
        result = assert_equivalent(
            BENCHMARKS["lu"],
            nprocs=2,
            num_threads=2,
            monitor_memory=True,
            monitored_vars=frozenset({"field"}),
        )
        assert any(type(e).__name__ == "MemAccess" for e in result.log)

    def test_collective_monitoring(self):
        assert_equivalent(
            BENCHMARKS["lu"], nprocs=2, num_threads=2, monitor_collectives=True
        )

    def test_collective_sites_narrowing(self):
        # narrow to a site set that cannot match anything: the engines
        # must agree on suppression too
        assert_equivalent(
            BENCHMARKS["lu"],
            nprocs=2,
            num_threads=2,
            monitor_collectives=True,
            collective_sites=frozenset({"9999:1"}),
        )


# ---------------------------------------------------------------------------
# language constructs


class TestConstructs:
    @pytest.mark.parametrize("seed", [0, 1, 5])
    def test_control_flow_kitchen_sink(self, seed):
        assert_src_equivalent(
            """
program t;
var total = 0;
func acc(x) {
    var s = 0;
    for (var i = 0; i < x; i = i + 1) {
        if (i % 3 == 0) { s = s + i; }
        else if (i % 3 == 1) { s = s - 1; }
        else { s = s + 2; }
    }
    while (s > 40) { s = s - 7; }
    return s;
}
func main() {
    for (var k = 0; k < 4; k = k + 1) { total = total + acc(5 + k); }
    print(total);
}
""",
            nprocs=1,
            num_threads=1,
            seed=seed,
        )

    def test_scope_shadowing_and_body_declares(self):
        # declarations inside loop bodies exercise the body push-scope
        # path the compiler inlines per construct
        assert_src_equivalent(
            """
program t;
var x = 1;
func main() {
    var x = 2;
    for (var i = 0; i < 3; i = i + 1) {
        var x = i * 10;
        print(x);
    }
    while (x < 5) {
        var y = x * 2;
        x = x + y + 1;
    }
    print(x);
}
""",
            nprocs=1,
            num_threads=1,
        )

    @pytest.mark.parametrize("seed", [0, 2])
    def test_omp_constructs(self, seed):
        assert_src_equivalent(
            wrap_main(
                """
    omp parallel num_threads(3) reduction(+: total) firstprivate(arr) {
        var t = omp_get_thread_num();
        total = total + t;
        omp critical { arr[t] = total; }
        omp for schedule(dynamic, 2) for (var j = 0; j < 9; j = j + 1) {
            compute(1);
        }
        omp for nowait for (var j = 0; j < 6; j = j + 1) {
            omp atomic total = total + 1;
        }
        omp single { print(total); }
        omp barrier;
        omp master { print(0 - total); }
        omp sections {
            omp section { omp atomic total = total + 100; }
            omp section { omp atomic total = total + 200; }
        }
    }
    print(total);
""",
                globals_="var total = 0;\nvar arr[4];",
            ),
            nprocs=1,
            num_threads=2,
            seed=seed,
        )

    @pytest.mark.parametrize("seed", [0, 4])
    def test_mpi_pingpong(self, seed):
        assert_src_equivalent(
            """
program t;
var a[2];
func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    if (rank == 0) {
        a[0] = 41;
        mpi_send(a, 1, 1, 0, MPI_COMM_WORLD);
        mpi_recv(a, 1, 1, 0, MPI_COMM_WORLD);
        print(a[0]);
    }
    if (rank == 1) {
        mpi_recv(a, 1, 0, 0, MPI_COMM_WORLD);
        a[0] = a[0] + 1;
        mpi_send(a, 1, 0, 0, MPI_COMM_WORLD);
    }
    mpi_barrier(MPI_COMM_WORLD);
    mpi_finalize();
}
""",
            nprocs=2,
            num_threads=2,
            seed=seed,
        )

    def test_pthreads(self):
        assert_src_equivalent(
            """
program t;
var counter = 0;
func bump(n) {
    for (var i = 0; i < n; i = i + 1) {
        omp_set_lock("m");
        counter = counter + 1;
        omp_unset_lock("m");
    }
    return 0;
}
func main() {
    omp_init_lock("m");
    var a = thread_spawn("bump", 4);
    var b = thread_spawn("bump", 4);
    thread_join(a);
    thread_join(b);
    print(counter);
}
""",
            nprocs=1,
            num_threads=2,
            seed=1,
        )

    def test_recursion(self):
        assert_src_equivalent(
            """
program t;
func fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() { print(fib(10)); }
""",
            nprocs=1,
            num_threads=1,
        )

    def test_return_inside_constructs(self):
        # a return unwinding out of loop/if nesting exercises the
        # flow-tuple propagation through every inlined statement loop
        assert_src_equivalent(
            """
program t;
func find(limit) {
    for (var i = 0; i < limit; i = i + 1) {
        if (i * i > 20) {
            while (1 == 1) { return i; }
        }
    }
    return 0 - 1;
}
func main() { print(find(10)); }
""",
            nprocs=1,
            num_threads=1,
        )

    def test_compute_superinstruction_costs(self):
        # distinct compute() costs share per-site Step caching in the
        # VM; clocks must still match the tree-walk exactly
        assert_src_equivalent(
            wrap_main(
                """
    for (var i = 0; i < 4; i = i + 1) { compute(i); }
    compute(0 - 3);
    print(mpi_wtime());
"""
            ),
            nprocs=1,
            num_threads=1,
        )


# ---------------------------------------------------------------------------
# abort parity


class TestAbortParity:
    def test_call_depth_exceeded(self):
        assert_both_abort(
            """
program t;
func spin(n) { return spin(n + 1); }
func main() { print(spin(0)); }
""",
            match="call depth exceeded",
            nprocs=1,
            num_threads=1,
        )

    def test_unknown_function(self):
        assert_both_abort(
            wrap_main("    nosuch(1, 2);"),
            match="unknown function",
            nprocs=1,
            num_threads=1,
        )

    def test_division_by_zero(self):
        assert_both_abort(
            wrap_main("    var z = 0;\n    print(1 / z);"),
            match="division",
            nprocs=1,
            num_threads=1,
        )

    def test_array_index_out_of_bounds(self):
        assert_both_abort(
            wrap_main("    arr[9] = 1;", globals_="var arr[2];"),
            match="out of",
            nprocs=1,
            num_threads=1,
        )

    def test_undefined_variable(self):
        assert_both_abort(
            wrap_main("    print(ghost);"),
            match="ghost",
            nprocs=1,
            num_threads=1,
        )

    def test_arity_mismatch(self):
        assert_both_abort(
            """
program t;
func two(a, b) { return a + b; }
func main() { print(two(1)); }
""",
            match="argument",
            nprocs=1,
            num_threads=1,
        )
