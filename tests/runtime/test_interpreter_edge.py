"""Interpreter corner cases: orphaned constructs, nesting, error paths."""

import pytest

from helpers import run_main, run_src

from repro.errors import SimAbort
from repro.runtime import RunConfig, run_program
from repro.minilang import parse


def printed(body, globals_="", **kw):
    return run_main(body, globals_, **kw).printed_lines()


class TestOrphanedConstructs:
    def test_orphaned_omp_for_binds_to_enclosing_team(self):
        """A worksharing loop inside a function called from a parallel
        region distributes over the caller's team (OpenMP orphaning)."""
        src = """
program p;
var sum = 0;
func kernel(n) {
    omp for for (var i = 0; i < n; i = i + 1) {
        omp critical { sum = sum + 1; }
    }
    return 0;
}
func main() {
    omp parallel num_threads(2) {
        kernel(8);
    }
    print(sum);
}
"""
        assert run_src(src).printed_lines() == ["8"]

    def test_orphaned_critical(self):
        src = """
program p;
var n = 0;
func bump(x) {
    omp critical { n = n + x; }
    return 0;
}
func main() {
    omp parallel num_threads(3) { bump(1); }
    print(n);
}
"""
        assert run_src(src).printed_lines() == ["3"]

    def test_orphaned_barrier(self):
        src = """
program p;
var flag = 0;
var bad = 0;
func sync(x) {
    omp barrier;
    return 0;
}
func main() {
    omp parallel num_threads(2) {
        if (omp_get_thread_num() == 0) { compute(50); flag = 1; }
        sync(0);
        if (flag != 1) { omp critical { bad = bad + 1; } }
    }
    print(bad);
}
"""
        assert run_src(src).printed_lines() == ["0"]

    def test_orphaned_single(self):
        src = """
program p;
var n = 0;
func once(x) {
    omp single { n = n + 1; }
    return 0;
}
func main() {
    omp parallel num_threads(4) { once(0); }
    print(n);
}
"""
        assert run_src(src).printed_lines() == ["1"]


class TestNesting:
    def test_parallel_inside_omp_for_iteration(self):
        body = """
var n = 0;
omp parallel num_threads(2) {
    omp for for (var i = 0; i < 2; i = i + 1) {
        omp parallel num_threads(2) {
            omp atomic n = n + 1;
        }
    }
}
print(n);
"""
        assert printed(body) == ["4"]

    def test_critical_within_critical_different_names(self):
        body = """
var n = 0;
omp parallel num_threads(2) {
    omp critical (outer) {
        omp critical (inner) {
            n = n + 1;
        }
    }
}
print(n);
"""
        assert printed(body) == ["2"]

    def test_sections_within_parallel_within_function(self):
        src = """
program p;
var a = 0;
func work(x) {
    omp sections {
        omp section { omp atomic a = a + 1; }
        omp section { omp atomic a = a + 10; }
    }
    return 0;
}
func main() {
    omp parallel num_threads(2) { work(0); }
    print(a);
}
"""
        assert run_src(src).printed_lines() == ["11"]


class TestErrorPaths:
    def test_bad_omp_for_header_rejected(self):
        body = """
omp parallel num_threads(2) {
    omp for for (var i = 0; compute(1); i = i + 1) { }
}
"""
        result = run_main(body)
        assert any("condition must test the loop variable" in n
                   for n in result.notes)

    def test_zero_step_rejected(self):
        # var i = i + 0 is a zero step
        body = """
omp parallel num_threads(2) {
    omp for for (var i = 0; i < 4; i = i + 0) { }
}
"""
        result = run_main(body)
        assert any("zero loop step" in n for n in result.notes)

    def test_num_threads_must_be_positive_at_runtime(self):
        body = """
var n = 0;
omp parallel num_threads(n) { }
"""
        result = run_main(body)
        assert any("num_threads must be >= 1" in n for n in result.notes)

    def test_indexing_non_array(self):
        result = run_main("var x = 1;\nprint(x[0]);")
        assert any("is not an array" in n for n in result.notes)

    def test_string_in_arithmetic_aborts(self):
        result = run_main('var x = "s" + 1;\nprint(x);')
        assert any("not supported between" in n for n in result.notes)
        assert result.printed_lines() == []

    def test_release_unheld_lock_aborts(self):
        result = run_main('omp_init_lock("l");\nomp_unset_lock("l");')
        assert any("released lock" in n for n in result.notes)


class TestCostModelIntegration:
    def test_scaled_cost_model_scales_makespan(self):
        from repro.runtime.costmodel import DEFAULT_COST_MODEL

        prog = "compute(50);\nprint(1);"
        base = run_main(prog)
        scaled = run_main(
            prog, cost_model=DEFAULT_COST_MODEL.scaled(2.0)
        )
        assert scaled.makespan == pytest.approx(2.0 * base.makespan)

    def test_makespan_equals_max_proc_clock(self):
        result = run_main("compute(10);", nprocs=3)
        assert result.makespan == max(result.proc_clocks.values())
