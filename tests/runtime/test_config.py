"""RunConfig validation and ExecutionResult surface tests."""

import pytest

from helpers import run_main

from repro.runtime import ExecutionResult, RunConfig
from repro.runtime.costmodel import (
    HOME_CHARGE,
    ITC_CHARGE,
    MARMOT_CHARGE,
    NO_INSTRUMENTATION,
)


class TestRunConfigValidation:
    def test_defaults_match_paper_setup(self):
        config = RunConfig()
        assert config.nprocs == 2
        assert config.num_threads == 2  # the paper's experiment setting

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            RunConfig(nprocs=0)

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            RunConfig(num_threads=0)

    def test_bad_thread_level_mode_rejected(self):
        with pytest.raises(ValueError):
            RunConfig(thread_level_mode="lenient")

    @pytest.mark.parametrize("mode", ["skip", "permissive", "strict"])
    def test_valid_modes(self, mode):
        assert RunConfig(thread_level_mode=mode).thread_level_mode == mode


class TestChargePresets:
    def test_no_instrumentation_is_free(self):
        c = NO_INSTRUMENTATION
        assert c.wrapper_cost == c.mem_event_cost == c.manager_rtt == 0.0
        assert not c.monitors_memory

    def test_itc_monitors_memory(self):
        assert ITC_CHARGE.monitors_memory
        assert not HOME_CHARGE.monitors_memory
        assert not MARMOT_CHARGE.monitors_memory

    def test_marmot_serializes(self):
        assert MARMOT_CHARGE.manager_serializes
        assert MARMOT_CHARGE.manager_service > 0

    def test_relative_weights_tell_the_papers_story(self):
        # per-thread startup: ITC's binary instrumentation dwarfs HOME's
        assert ITC_CHARGE.per_thread_setup > 3 * HOME_CHARGE.per_thread_setup
        # HOME logs only monitored variables — no per-access cost at all
        assert HOME_CHARGE.mem_event_cost == 0.0


class TestExecutionResultSurface:
    def test_summary_fields(self):
        result = run_main("print(1);", nprocs=2, threads=2)
        text = result.summary()
        assert "procs=2" in text and "makespan=" in text

    def test_printed_lines_order_per_process(self):
        result = run_main("print(1);\nprint(2);", nprocs=1)
        assert result.printed_lines() == ["1", "2"]

    def test_stats_keys(self):
        result = run_main("compute(1);")
        assert set(result.stats) >= {
            "scheduler_steps", "messages_sent", "mpi_calls", "events",
        }
