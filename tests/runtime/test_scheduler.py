"""Cooperative scheduler unit tests."""

import pytest

from repro.errors import (
    DeadlockError,
    SchedulerError,
    StepLimitError,
    WallClockLimitError,
)
from repro.runtime.scheduler import Block, Scheduler, Step


def make_counter_task(log, name, n, cost=1.0):
    def gen():
        for i in range(n):
            log.append((name, i))
            yield Step(cost)
    return gen()


class TestBasicExecution:
    def test_single_task_runs_to_completion(self):
        log = []
        sched = Scheduler(seed=0)
        sched.spawn("a", 0, 0, make_counter_task(log, "a", 3))
        sched.run()
        assert log == [("a", 0), ("a", 1), ("a", 2)]

    def test_clock_accumulates_step_costs(self):
        sched = Scheduler(seed=0)
        task = sched.spawn("a", 0, 0, make_counter_task([], "a", 4, cost=2.5))
        sched.run()
        assert task.clock == 10.0

    def test_makespan_is_max_clock(self):
        sched = Scheduler(seed=0)
        sched.spawn("a", 0, 0, make_counter_task([], "a", 2, cost=1.0))
        sched.spawn("b", 1, 0, make_counter_task([], "b", 2, cost=5.0))
        sched.run()
        assert sched.makespan() == 10.0

    def test_interleaving_depends_on_seed(self):
        orders = set()
        for seed in range(8):
            log = []
            sched = Scheduler(seed=seed)
            sched.spawn("a", 0, 0, make_counter_task(log, "a", 3))
            sched.spawn("b", 0, 1, make_counter_task(log, "b", 3))
            sched.run()
            orders.add(tuple(log))
        assert len(orders) > 1

    def test_same_seed_same_interleaving(self):
        def trace(seed):
            log = []
            sched = Scheduler(seed=seed)
            sched.spawn("a", 0, 0, make_counter_task(log, "a", 5))
            sched.spawn("b", 0, 1, make_counter_task(log, "b", 5))
            sched.run()
            return log
        assert trace(3) == trace(3)

    def test_round_robin_policy_alternates(self):
        log = []
        sched = Scheduler(seed=0, policy="rr")
        sched.spawn("a", 0, 0, make_counter_task(log, "a", 3))
        sched.spawn("b", 0, 1, make_counter_task(log, "b", 3))
        sched.run()
        names = [n for n, _ in log]
        assert names == ["a", "b", "a", "b", "a", "b"]

    def test_unknown_policy_rejected(self):
        with pytest.raises(SchedulerError):
            Scheduler(policy="lifo")


class TestBlocking:
    def test_block_until_condition(self):
        flag = {"ready": False}
        log = []

        def waiter():
            yield Block("wait for flag", lambda: flag["ready"])
            log.append("woke")

        def setter():
            yield Step(1.0)
            flag["ready"] = True
            log.append("set")

        sched = Scheduler(seed=1)
        sched.spawn("w", 0, 0, waiter())
        sched.spawn("s", 0, 1, setter())
        sched.run()
        assert log.index("set") < log.index("woke")

    def test_competing_waiters_one_wins_loser_stays_blocked(self):
        # Two tasks wait on one token: exactly one is woken (the pick
        # re-evaluates conditions), and the loser deadlocks.
        tokens = [1]
        winners = []

        def taker(name):
            yield Block(f"{name} waits", lambda: bool(tokens))
            tokens.pop()
            winners.append(name)
            yield Step(1.0)

        sched = Scheduler(seed=2)
        sched.spawn("a", 0, 0, taker("a"))
        sched.spawn("b", 0, 1, taker("b"))
        with pytest.raises(DeadlockError) as exc:
            sched.run()
        assert len(winners) == 1
        assert len(exc.value.blocked) == 1

    def test_deadlock_detected(self):
        def stuck():
            yield Block("never", lambda: False)

        sched = Scheduler(seed=0)
        sched.spawn("a", 0, 0, stuck())
        with pytest.raises(DeadlockError) as exc:
            sched.run()
        assert exc.value.blocked
        assert exc.value.blocked[0].reason == "never"

    def test_deadlock_reports_all_blocked(self):
        def stuck(reason):
            yield Block(reason, lambda: False)

        sched = Scheduler(seed=0)
        sched.spawn("a", 0, 0, stuck("r1"))
        sched.spawn("b", 1, 0, stuck("r2"))
        with pytest.raises(DeadlockError) as exc:
            sched.run()
        assert {b.reason for b in exc.value.blocked} == {"r1", "r2"}

    def test_deadlock_message_names_ranks_and_pending_ops(self):
        # timeout-vs-deadlock triage needs the full wait set in the
        # message itself, grouped per rank with each pending operation
        def stuck(reason):
            yield Block(reason, lambda: False)

        sched = Scheduler(seed=0)
        sched.spawn("a", 0, 0, stuck("mpi_recv from rank 1 tag 9"))
        sched.spawn("b", 0, 1, stuck("mpi_barrier on comm 0"))
        sched.spawn("c", 1, 0, stuck("mpi_recv from rank 0 tag 9"))
        with pytest.raises(DeadlockError) as exc:
            sched.run()
        message = str(exc.value)
        assert "rank 0 [t0: mpi_recv from rank 1 tag 9, " \
               "t1: mpi_barrier on comm 0]" in message
        assert "rank 1 [t0: mpi_recv from rank 0 tag 9]" in message

    def test_spawn_during_run(self):
        log = []
        sched = Scheduler(seed=0)

        def parent():
            yield Step(1.0)
            sched.spawn("child", 0, 1, make_counter_task(log, "child", 2))
            yield Step(1.0)

        sched.spawn("p", 0, 0, parent())
        sched.run()
        assert ("child", 1) in log

    def test_max_steps_guard(self):
        def forever():
            while True:
                yield Step(1.0)

        sched = Scheduler(seed=0, max_steps=100)
        sched.spawn("loop", 0, 0, forever())
        with pytest.raises(SchedulerError, match="infinite loop"):
            sched.run()

    def test_bad_yield_type(self):
        def bad():
            yield 42

        sched = Scheduler(seed=0)
        sched.spawn("bad", 0, 0, bad())
        with pytest.raises(SchedulerError):
            sched.run()

    def test_clocks_by_process(self):
        sched = Scheduler(seed=0)
        sched.spawn("a", 0, 0, make_counter_task([], "a", 1, cost=3.0))
        sched.spawn("b", 0, 1, make_counter_task([], "b", 1, cost=7.0))
        sched.spawn("c", 1, 0, make_counter_task([], "c", 1, cost=2.0))
        sched.run()
        assert sched.clocks_by_process() == {0: 7.0, 1: 2.0}


class TestBudgetDiagnostics:
    def forever(self):
        while True:
            yield Step(1.0)

    def test_step_limit_carries_per_task_counts(self):
        sched = Scheduler(seed=0, max_steps=100)
        sched.spawn("hungry", 0, 0, self.forever())
        sched.spawn("idle", 0, 1, make_counter_task([], "idle", 2))
        with pytest.raises(StepLimitError) as exc:
            sched.run()
        assert exc.value.task_steps["hungry"] > exc.value.task_steps["idle"]
        assert sum(exc.value.task_steps.values()) == 101

    def test_step_limit_message_names_busiest_task(self):
        sched = Scheduler(seed=0, max_steps=100)
        sched.spawn("spinner", 0, 0, self.forever())
        with pytest.raises(StepLimitError, match="busiest tasks: spinner"):
            sched.run()

    def test_step_limit_is_a_scheduler_error(self):
        assert issubclass(StepLimitError, SchedulerError)
        assert issubclass(WallClockLimitError, SchedulerError)

    def test_wall_clock_budget_enforced(self):
        sched = Scheduler(seed=0, max_wall_seconds=0.05)
        sched.spawn("spinner", 0, 0, self.forever())
        with pytest.raises(WallClockLimitError, match="wall-clock budget"):
            sched.run()

    def test_zero_wall_budget_means_unlimited(self):
        sched = Scheduler(seed=0, max_wall_seconds=0.0)
        sched.spawn("t", 0, 0, make_counter_task([], "t", 50))
        sched.run()  # must not raise
        assert sched.total_steps == 50
