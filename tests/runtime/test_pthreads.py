"""Pthread-style explicit threads (the paper's future-work extension)."""

import pytest

from helpers import run_src, wrap_main

from repro.analysis.dynamic_.memraces import find_memory_races
from repro.events import ThreadBegin, ThreadFork, ThreadJoin
from repro.home import check_program
from repro.minilang import parse
from repro.violations import CONCURRENT_RECV, INITIALIZATION


class TestSpawnJoin:
    def test_join_returns_function_result(self):
        src = """
program p;
func worker(n) { return n * 2; }
func main() {
    var t = thread_spawn("worker", 21);
    print(thread_join(t));
}
"""
        assert run_src(src).printed_lines() == ["42"]

    def test_threads_share_globals(self):
        src = """
program p;
var counter = 0;
func bump(n) {
    for (var i = 0; i < n; i = i + 1) {
        omp_set_lock("m");
        counter = counter + 1;
        omp_unset_lock("m");
    }
    return 0;
}
func main() {
    omp_init_lock("m");
    var a = thread_spawn("bump", 5);
    var b = thread_spawn("bump", 5);
    thread_join(a);
    thread_join(b);
    print(counter);
}
"""
        for seed in (0, 3):
            assert run_src(src, seed=seed).printed_lines() == ["10"]

    def test_join_waits_for_completion(self):
        src = """
program p;
func slow(n) { compute(100); return n; }
func main() {
    var t = thread_spawn("slow", 1);
    thread_join(t);
    print(mpi_wtime() >= 1000);
}
"""
        assert run_src(src).printed_lines() == ["True"]

    def test_fork_join_events_emitted(self):
        src = """
program p;
func w(n) { return n; }
func main() {
    var t = thread_spawn("w", 1);
    thread_join(t);
}
"""
        result = run_src(src)
        assert len(result.log.of_type(ThreadFork)) == 1
        assert len(result.log.of_type(ThreadBegin)) == 1
        assert len(result.log.of_type(ThreadJoin)) == 1

    def test_unknown_function_aborts(self):
        result = run_src(wrap_main('thread_spawn("ghost", 1);'))
        assert any("unknown function" in n for n in result.notes)

    def test_unknown_handle_aborts(self):
        result = run_src(wrap_main("thread_join(99);"))
        assert any("unknown thread handle" in n for n in result.notes)

    def test_wrong_arity_worker_rejected(self):
        src = """
program p;
func w(a, b) { return a; }
func main() { thread_spawn("w", 1); }
"""
        result = run_src(src)
        assert any("exactly one parameter" in n for n in result.notes)


class TestAnalysisIntegration:
    def test_join_creates_happens_before_edge(self):
        """Writes in a joined thread are ordered before post-join reads —
        no race reported."""
        src = """
program p;
var x = 0;
func writer(n) { x = n; return 0; }
func main() {
    var t = thread_spawn("writer", 7);
    thread_join(t);
    x = x + 1;
    print(x);
}
"""
        result = run_src(src, monitor_memory=True)
        assert result.printed_lines() == ["8"]
        assert find_memory_races(result.log, 0) == []

    def test_unjoined_concurrent_writes_race(self):
        src = """
program p;
var x = 0;
func writer(n) { x = n; return 0; }
func main() {
    var t = thread_spawn("writer", 7);
    x = 1;
    thread_join(t);
}
"""
        result = run_src(src, monitor_memory=True)
        races = find_memory_races(result.log, 0)
        assert any(r.var == "x" for r in races)

    def test_mpi_from_spawned_threads_checked(self):
        """HOME's violation rules apply unchanged to pthread-style code."""
        src = """
program p;
var buf[2];
func receiver(partner) {
    mpi_recv(buf, 1, partner, 9, MPI_COMM_WORLD);
    return 0;
}
func main() {
    var provided = mpi_init_thread(MPI_THREAD_MULTIPLE);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var partner = 1 - rank;
    mpi_send(buf, 1, partner, 9, MPI_COMM_WORLD);
    mpi_send(buf, 1, partner, 9, MPI_COMM_WORLD);
    var t1 = thread_spawn("receiver", partner);
    var t2 = thread_spawn("receiver", partner);
    thread_join(t1);
    thread_join(t2);
    mpi_finalize();
}
"""
        report = check_program(parse(src), nprocs=2)
        assert CONCURRENT_RECV in report.violations.classes()

    def test_spawned_mpi_under_funneled_is_initialization_violation(self):
        src = """
program p;
var buf[2];
func caller(n) {
    mpi_barrier(MPI_COMM_WORLD);
    return 0;
}
func main() {
    var provided = mpi_init_thread(MPI_THREAD_FUNNELED);
    var rank = mpi_comm_rank(MPI_COMM_WORLD);
    var t = thread_spawn("caller", 0);
    thread_join(t);
    mpi_finalize();
}
"""
        report = check_program(parse(src), nprocs=2,
                               thread_level_mode="permissive")
        assert INITIALIZATION in report.violations.classes()
