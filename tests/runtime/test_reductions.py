"""OpenMP reduction clause tests."""

import pytest

from helpers import run_main, run_src

from repro.analysis.dynamic_.memraces import find_memory_races
from repro.errors import ParseError
from repro.minilang import ast_equal, parse, print_program


def printed(body, globals_="", **kw):
    return run_main(body, globals_, **kw).printed_lines()


class TestParsing:
    def test_roundtrip(self):
        src = """
program r;
func main() {
    var s = 0;
    omp parallel num_threads(2) reduction(+: s) reduction(min: s) {
        compute(1);
    }
}
"""
        prog = parse(src)
        assert ast_equal(prog, parse(print_program(prog)))

    def test_multiple_vars_one_clause(self):
        prog = parse("""
program r;
func main() {
    var a = 0;
    var b = 0;
    omp parallel reduction(+: a, b) { }
}
""")
        region = prog.main.body.stmts[2]
        assert region.reductions == [("+", "a"), ("+", "b")]

    def test_bad_operator_rejected(self):
        with pytest.raises(ParseError, match="reduction operator"):
            parse("""
program r;
func main() { omp parallel reduction(-: a) { } }
""")


class TestParallelReduction:
    def test_sum_over_team(self):
        body = """
var s = 0;
omp parallel num_threads(4) reduction(+: s) {
    s = s + omp_get_thread_num() + 1;
}
print(s);
"""
        assert printed(body) == ["10"]

    def test_product(self):
        body = """
var p = 1;
omp parallel num_threads(3) reduction(*: p) {
    p = p * 2;
}
print(p);
"""
        assert printed(body) == ["8"]

    def test_original_value_participates(self):
        body = """
var s = 100;
omp parallel num_threads(2) reduction(+: s) {
    s = s + 1;
}
print(s);
"""
        assert printed(body) == ["102"]

    def test_min_max(self):
        body = """
var lo = 99;
var hi = 0;
omp parallel num_threads(3) reduction(min: lo) reduction(max: hi) {
    var t = omp_get_thread_num();
    if (t + 1 < lo) { lo = t + 1; }
    if (t + 1 > hi) { hi = t + 1; }
}
print(lo, hi);
"""
        assert printed(body) == ["1 3"]

    def test_deterministic_across_seeds(self):
        body = """
var s = 0;
omp parallel num_threads(4) reduction(+: s) {
    omp for for (var i = 0; i < 32; i = i + 1) {
        s = s + i;
    }
}
print(s);
"""
        for seed in range(5):
            assert printed(body, seed=seed) == ["496"], seed


class TestForReduction:
    def test_sum_loop(self):
        body = """
var s = 0;
omp parallel num_threads(2) {
    omp for reduction(+: s) for (var i = 1; i <= 100; i = i + 1) {
        s = s + i;
    }
}
print(s);
"""
        assert printed(body) == ["5050"]

    def test_value_visible_after_loop_barrier(self):
        body = """
var s = 0;
var seen = -1;
omp parallel num_threads(2) {
    omp for reduction(+: s) for (var i = 0; i < 4; i = i + 1) {
        s = s + 1;
    }
    omp single { seen = s; }
}
print(seen);
"""
        assert printed(body) == ["4"]

    def test_serial_context(self):
        body = """
var s = 0;
omp parallel num_threads(1) {
    omp for reduction(+: s) for (var i = 0; i < 3; i = i + 1) { s = s + 1; }
}
print(s);
"""
        assert printed(body) == ["3"]


class TestAnalysisView:
    def test_reduction_is_race_free(self):
        """The fold synchronizes via the atomic lock: no data race even
        for the ITC-style full-memory detector."""
        body = """
var s = 0;
omp parallel num_threads(4) reduction(+: s) {
    s = s + 1;
}
print(s);
"""
        result = run_main(body, monitor_memory=True)
        assert result.printed_lines() == ["4"]
        assert find_memory_races(result.log, 0) == []

    def test_equivalent_unprotected_code_does_race(self):
        body = """
var s = 0;
omp parallel num_threads(4) {
    s = s + 1;
}
print(s);
"""
        result = run_main(body, monitor_memory=True)
        assert any(r.var == "s" for r in find_memory_races(result.log, 0))
