"""Shape assertions for the reproduced figures 4-7.

Absolute values are virtual-time units; the reproduction targets are
the paper's *shapes*: base time falls with process count, the tool
ordering is Base < HOME <= MARMOT < ITC at scale, and the overhead
bands land near the reported ones (HOME 16-45%, Marmot 15-56%, ITC up
to ~200%).

A reduced process sweep keeps this module fast; the full sweep runs in
the benchmark harness.
"""

import pytest

from repro.experiments import (
    execution_time_figure,
    measure_execution_times,
    overhead_band,
    overhead_figure,
)
from repro.workloads.npb import build_lu_mz

PROCS = (2, 8, 32)

_FIG = {}


def fig(bench_name):
    if bench_name not in _FIG:
        _FIG[bench_name] = execution_time_figure(bench_name, procs=PROCS)
    return _FIG[bench_name]


def overhead():
    if "fig7" not in _FIG:
        _FIG["fig7"] = overhead_figure(procs=PROCS)
    return _FIG["fig7"]


@pytest.mark.parametrize("bench_name", ["lu", "bt", "sp"])
class TestExecutionTimeFigures:
    def test_all_four_series_present(self, bench_name):
        names = {s.name for s in fig(bench_name).series}
        assert names == {"Base", "HOME", "MARMOT", "ITC"}

    def test_base_time_decreases_with_processes(self, bench_name):
        base = fig(bench_name).get("Base")
        ys = base.ys()
        assert ys == sorted(ys, reverse=True)

    def test_tool_ordering_at_scale(self, bench_name):
        data = fig(bench_name)
        p = PROCS[-1]
        assert (
            data.get("Base").at(p)
            < data.get("HOME").at(p)
            < data.get("MARMOT").at(p)
            < data.get("ITC").at(p)
        )

    def test_home_cheapest_checker_at_scale(self, bench_name):
        # At P=2 the paper's HOME (16%) and Marmot (15%) bands touch, so
        # only the scaled-up ordering is asserted strictly; ITC is always
        # the most expensive.
        data = fig(bench_name)
        for p in PROCS:
            if p >= 8:
                assert data.get("HOME").at(p) <= data.get("MARMOT").at(p)
            assert data.get("HOME").at(p) < data.get("ITC").at(p)

    def test_render_contains_series(self, bench_name):
        text = fig(bench_name).render()
        assert "HOME" in text and "processes" in text


class TestOverheadFigure:
    def test_home_band_matches_paper(self):
        lo, hi = overhead_band(overhead(), "HOME")
        # Paper: "overhead of HOME is ranging from 16% to 45%"
        assert 10 <= lo <= 25
        assert 30 <= hi <= 55

    def test_marmot_band_matches_paper(self):
        lo, hi = overhead_band(overhead(), "MARMOT")
        # Paper: "Marmot it is ranging from 15% to 56%"
        assert 10 <= lo <= 30
        assert 35 <= hi <= 75

    def test_itc_band_matches_paper(self):
        lo, hi = overhead_band(overhead(), "ITC")
        # Paper: "much higher using Intel Thread Checker which is up to
        # around 200%"
        assert lo >= 70
        assert 150 <= hi <= 260

    def test_overheads_grow_with_processes(self):
        data = overhead()
        for tool in ("HOME", "MARMOT", "ITC"):
            ys = data.get(tool).ys()
            assert ys[0] < ys[-1], tool

    def test_marmot_grows_faster_than_home(self):
        data = overhead()
        p_small, p_big = PROCS[0], PROCS[-1]
        home_growth = data.get("HOME").at(p_big) - data.get("HOME").at(p_small)
        marmot_growth = data.get("MARMOT").at(p_big) - data.get("MARMOT").at(p_small)
        assert marmot_growth > home_growth


class TestMeasurementHarness:
    def test_measure_returns_all_tools(self):
        times = measure_execution_times(
            lambda: build_lu_mz(inject=True), procs=(2,), threads=2
        )
        assert set(times) == {"Base", "HOME", "MARMOT", "ITC"}
        assert all(2 in points for points in times.values())

    def test_measurement_is_deterministic(self):
        a = measure_execution_times(lambda: build_lu_mz(inject=True), procs=(4,))
        b = measure_execution_times(lambda: build_lu_mz(inject=True), procs=(4,))
        assert a == b
