"""Series/figure/table container tests."""

import pytest

from repro.experiments import FigureData, Series, TableData


class TestSeries:
    def test_xs_sorted(self):
        s = Series("a", {8: 1.0, 2: 3.0, 4: 2.0})
        assert s.xs() == [2, 4, 8]
        assert s.ys() == [3.0, 2.0, 1.0]

    def test_at(self):
        s = Series("a", {2: 5.0})
        assert s.at(2) == 5.0
        with pytest.raises(KeyError):
            s.at(99)


class TestFigureData:
    def _fig(self):
        fig = FigureData("T", "x", "y")
        fig.series.append(Series("a", {1: 10.0, 2: 20.0}))
        fig.series.append(Series("b", {1: 11.0, 3: 33.0}))
        return fig

    def test_get_by_name(self):
        assert self._fig().get("a").at(1) == 10.0

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            self._fig().get("z")

    def test_xs_union(self):
        assert self._fig().xs() == [1, 2, 3]

    def test_render_fills_gaps_with_dash(self):
        text = self._fig().render()
        assert "T" in text
        lines = [l for l in text.splitlines() if l.strip().startswith("2")]
        assert any("-" in l for l in lines)

    def test_render_custom_format(self):
        text = self._fig().render(fmt="{:.1f}%")
        assert "10.0%" in text


class TestTableData:
    def _table(self):
        t = TableData("Tbl", ["k", "v"])
        t.rows.append(["alpha", 1])
        t.rows.append(["beta", 22])
        return t

    def test_render_aligned(self):
        text = self._table().render()
        assert "Tbl" in text and "alpha" in text and "22" in text

    def test_row_for(self):
        assert self._table().row_for("beta") == ["beta", 22]

    def test_row_for_missing(self):
        with pytest.raises(KeyError):
            self._table().row_for("gamma")
