"""Schedule-sensitivity study tests."""

import pytest

from repro.baselines import Marmot
from repro.experiments import detection_rates, schedule_study, study_table
from repro.home import Home
from repro.violations import CONCURRENT_RECV, COLLECTIVE
from repro.workloads.npb import build_lu_mz

SEEDS = tuple(range(5))

_STUDY = {}


def study():
    if not _STUDY:
        _STUDY.update(
            schedule_study(build_lu_mz(inject=True), seeds=SEEDS)
        )
    return _STUDY


class TestScheduleStudy:
    def test_home_detects_every_class_on_every_seed(self):
        home = study()["HOME"]
        assert home.nruns == len(SEEDS)
        for vclass in home.classes():
            assert home.rate(vclass) == 1.0, vclass

    def test_marmot_never_sees_the_skewed_recv(self):
        marmot = study()["MARMOT"]
        assert marmot.rate(CONCURRENT_RECV) == 0.0

    def test_marmot_always_sees_manifest_collective(self):
        marmot = study()["MARMOT"]
        assert marmot.rate(COLLECTIVE) == 1.0

    def test_rates_bounded(self):
        for rates in study().values():
            for vclass in rates.classes():
                assert 0.0 <= rates.rate(vclass) <= 1.0

    def test_rate_of_unseen_class_is_zero(self):
        assert study()["HOME"].rate("NoSuchViolation") == 0.0

    def test_table_rendering(self):
        text = study_table(study()).render()
        assert "HOME" in text and "MARMOT" in text
        assert "100%" in text and "0%" in text

    def test_detection_rates_single_tool(self):
        rates = detection_rates(
            build_lu_mz(inject=True), Marmot(), seeds=(0, 1), nprocs=2
        )
        assert rates.tool == "MARMOT"
        assert rates.nruns == 2
