"""Thread-count sweep tests."""

import pytest

from repro.experiments import build_thread_sweep_program, thread_overhead_figure
from repro.home import check_program
from repro.minilang import validate
from repro.runtime import RunConfig, run_program


class TestThreadSweepWorkload:
    def test_program_validates(self):
        validate(build_thread_sweep_program())

    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_runs_clean_at_any_team_size(self, threads):
        result = run_program(
            build_thread_sweep_program(),
            RunConfig(nprocs=2, num_threads=threads),
        )
        assert not result.deadlocked
        assert result.notes == []

    def test_violation_free_by_construction(self):
        report = check_program(build_thread_sweep_program(), nprocs=2,
                               num_threads=4)
        assert len(report.violations) == 0


class TestThreadOverheadFigure:
    def test_itc_growth_with_threads(self):
        fig = thread_overhead_figure(
            build_thread_sweep_program, threads=(1, 4), nprocs=2
        )
        itc = fig.get("ITC")
        assert itc.at(4) > 2 * itc.at(1)

    def test_all_tools_present(self):
        fig = thread_overhead_figure(
            build_thread_sweep_program, threads=(2,), nprocs=2
        )
        assert {s.name for s in fig.series} == {"HOME", "MARMOT", "ITC"}
