"""The headline reproduction result: the paper's detection-count table.

Paper §V-B::

    Benchmarks      HOME  ITC  Marmot
    NPB-MZ LU (6)   6     5    5
    NPB-MZ BT (6)   6     7    6
    NPB-MZ SP (6)   6     6    5
"""

import pytest

from repro.experiments import PAPER_TABLE1, run_table1, table1_data

# One sweep shared by every assertion in this module.
_CELLS = None


def cells():
    global _CELLS
    if _CELLS is None:
        _CELLS = run_table1()
    return _CELLS


@pytest.mark.parametrize("bench_name", ["lu", "bt", "sp"])
@pytest.mark.parametrize("tool", ["HOME", "ITC", "MARMOT"])
def test_cell_matches_paper(bench_name, tool):
    cell = cells()[(bench_name, tool)]
    assert cell.score == PAPER_TABLE1[(bench_name, tool)], (
        f"{bench_name}/{tool}: scored {cell.score}, paper says "
        f"{PAPER_TABLE1[(bench_name, tool)]} "
        f"(detected={cell.detected}, fp={cell.false_positives}, "
        f"missed={cell.missed})"
    )


class TestDetailedClaims:
    def test_home_detects_all_six_everywhere(self):
        for benchmark in ("lu", "bt", "sp"):
            cell = cells()[(benchmark, "HOME")]
            assert cell.detected == 6 and cell.false_positives == 0

    def test_itc_misses_lu_probe(self):
        cell = cells()[("lu", "ITC")]
        assert cell.missed == ["inject_probe"]

    def test_itc_bt_false_positive_is_the_named_critical(self):
        cell = cells()[("bt", "ITC")]
        assert cell.detected == 6 and cell.false_positives == 1

    def test_marmot_misses_skewed_recv_in_lu(self):
        cell = cells()[("lu", "MARMOT")]
        assert cell.missed == ["inject_concurrent_recv"]

    def test_marmot_misses_skewed_request_in_sp(self):
        cell = cells()[("sp", "MARMOT")]
        assert cell.missed == ["inject_concurrent_request"]

    def test_marmot_never_false_positives(self):
        for benchmark in ("lu", "bt", "sp"):
            assert cells()[(benchmark, "MARMOT")].false_positives == 0

    def test_table_render_includes_paper_values(self):
        text = table1_data(cells()).render()
        assert "NPB-MZ LU (6)" in text
        assert "6 (6)" in text and "7 (7)" in text

    def test_matches_paper_flags(self):
        assert all(cell.matches_paper for cell in cells().values())
